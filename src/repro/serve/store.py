"""The incremental entity store: online upserts with batch-parity clustering.

:class:`EntityStore` is the stateful heart of the serving layer.  Where the
batch :class:`~repro.pipeline.LinkagePipeline` freezes a corpus and resolves
it once, the store keeps the resolved world *live*: every
:meth:`~EntityStore.upsert` feeds one record through the same MinHash-LSH /
inverted-token / initials indexes, scores only the candidate pairs the new
record created, and re-resolves only the connected components the new (or
retracted) match edges touched.

The store maintains exact parity with the batch pipeline: after streaming any
record sequence through ``upsert``, :meth:`clusters` equals
``LinkagePipeline.run`` over the same sequence.  Three properties make that
hold:

* **bucket parity** — :meth:`~repro.pipeline.index._BucketedIndex.ingest_one`
  reproduces bulk bucket state bit-exactly, and per-bucket *support counting*
  mirrors the overflow-cap semantics: a pair is a candidate while at least
  one live (non-overflowed) bucket contains both records, so when a bucket
  overflows mid-stream the pairs it alone supported are retracted, exactly as
  batch ``candidate_pairs`` would never have emitted them;
* **component locality** — the greedy source-consistent merge
  (:func:`~repro.pipeline.clustering.apply_match_edges`) decides each edge
  from the state of its own connected component only, so re-resolving the
  affected components from scratch equals a global re-run;
* **canonical edge order** — both paths sort match edges with
  :func:`~repro.pipeline.clustering.order_match_edges`.

Snapshots persist the records, pair scores and config; :meth:`restore`
replays the stream against the stored scores, so a restored store is
bit-exact without needing the model at load time.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, fields, replace
from itertools import combinations
from pathlib import Path
from typing import (Callable, Dict, List, Mapping, NamedTuple, Optional,
                    Sequence, Set, Tuple, Union)

import numpy as np

from ..data.records import EntityPair, Record
from ..obs import BoundHandles
from ..pipeline.clustering import (MatchEdge, UnionFind, apply_match_edges,
                                   order_match_edges)
from ..pipeline.engine import PipelineConfig
from ..pipeline.index import build_blocking_indexes
from ..utils.serialization import load_json, save_json

__all__ = ["EntityStore", "StoreConfig", "QueryMatch",
           "SNAPSHOT_FORMAT_VERSION", "SUPPORTED_SNAPSHOT_VERSIONS",
           "STATE_FORMAT_VERSION"]

# Directory snapshots (snapshot()/restore()): version 2 marks the atomic
# temp-file + rename write path; the payload schema is unchanged, so both
# versions load.
SNAPSHOT_FORMAT_VERSION = 2
SUPPORTED_SNAPSHOT_VERSIONS = (1, 2)

# Materialized state dicts (freeze_state()/from_state_dict()), used by the
# repro.storage snapshot files.
STATE_FORMAT_VERSION = 1
SUPPORTED_STATE_VERSIONS = (1,)

ScoreFn = Callable[[Sequence[EntityPair]], np.ndarray]
PairKey = Tuple[int, int]  # (smaller position, larger position)
#: Commit hook: (record, {pair_id: score}, planned bucket retractions) —
#: called after scoring, before any mutation; see set_commit_hook().
CommitHook = Callable[[Record, Dict[str, float], List[List[int]]], None]


def _pair_key_str(key: PairKey) -> str:
    return f"{key[0]},{key[1]}"


def _parse_pair_key(text: str) -> PairKey:
    left, right = text.split(",")
    return (int(left), int(right))


@dataclass(frozen=True)
class StoreConfig:
    """Blocking / clustering knobs of the entity store.

    Defaults mirror :class:`~repro.pipeline.PipelineConfig`, so a store and a
    batch pipeline built from matching configs resolve identically.
    """

    blocking_attributes: Optional[Sequence[str]] = None
    num_perm: int = 128
    bands: int = 32
    lsh_max_bucket_size: int = 8
    max_postings: int = 8
    initials_max_bucket_size: int = 16
    min_token_length: int = 3
    cross_source_only: bool = True
    score_threshold: float = 0.5
    source_consistent: bool = True
    seed: int = 7
    # Posting-list backend of the blocking indexes: "memory" (default) or
    # "sqlite" (repro.storage.backends — bucket state pages from disk).
    # backend_path is the SQLite database file; None keeps it in memory.
    backend: str = "memory"
    backend_path: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "blocking_attributes": (list(self.blocking_attributes)
                                    if self.blocking_attributes is not None else None),
            "num_perm": self.num_perm,
            "bands": self.bands,
            "lsh_max_bucket_size": self.lsh_max_bucket_size,
            "max_postings": self.max_postings,
            "initials_max_bucket_size": self.initials_max_bucket_size,
            "min_token_length": self.min_token_length,
            "cross_source_only": self.cross_source_only,
            "score_threshold": self.score_threshold,
            "source_consistent": self.source_consistent,
            "seed": self.seed,
            "backend": self.backend,
            "backend_path": self.backend_path,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StoreConfig":
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def from_pipeline_config(cls, config: PipelineConfig) -> "StoreConfig":
        """The store config that mirrors a batch pipeline config."""
        return cls(blocking_attributes=config.blocking_attributes,
                   num_perm=config.num_perm, bands=config.bands,
                   lsh_max_bucket_size=config.lsh_max_bucket_size,
                   max_postings=config.max_postings,
                   initials_max_bucket_size=config.initials_max_bucket_size,
                   min_token_length=config.min_token_length,
                   cross_source_only=config.cross_source_only,
                   score_threshold=config.score_threshold,
                   source_consistent=config.source_consistent,
                   seed=config.seed)

    def to_pipeline_config(self, **overrides: object) -> PipelineConfig:
        """The batch pipeline config this store is parity-equivalent to."""
        payload = self.as_dict()
        # Backend choice is a storage concern with no batch-pipeline
        # counterpart (blocking output is backend-invariant).
        payload.pop("backend", None)
        payload.pop("backend_path", None)
        payload.update(overrides)
        return PipelineConfig(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class QueryMatch:
    """One ranked entity returned by :meth:`EntityStore.query`."""

    entity_id: str
    score: float
    record_id: str  # the best-scoring member record
    size: int       # entity size at query time


@dataclass
class _StoreCounters:
    upserts: int = 0
    pairs_scored: int = 0
    pairs_retracted: int = 0
    edges_retracted: int = 0
    resolutions: int = 0
    queries: int = 0


class _StoreInstruments(NamedTuple):
    upserts: object
    queries: object
    pairs_scored: object
    pairs_retracted: object
    edges_retracted: object
    resolutions: object
    upsert_seconds: object
    query_seconds: object


def _bind_store_instruments(registry) -> _StoreInstruments:
    return _StoreInstruments(
        upserts=registry.counter("store_upserts_total", "Records upserted"),
        queries=registry.counter("store_queries_total", "Probe queries served"),
        pairs_scored=registry.counter("store_pairs_scored_total",
                                      "Candidate pairs scored by upserts"),
        pairs_retracted=registry.counter("store_pairs_retracted_total",
                                         "Candidate pairs retracted by bucket overflow"),
        edges_retracted=registry.counter("store_edges_retracted_total",
                                         "Match edges withdrawn by retraction"),
        resolutions=registry.counter("store_resolutions_total",
                                     "Component re-resolutions run"),
        upsert_seconds=registry.histogram("store_upsert_seconds",
                                          "End-to-end upsert latency"),
        query_seconds=registry.histogram("store_query_seconds",
                                         "End-to-end query latency"),
    )


class EntityStore:
    """Persistent, incrementally maintained entity clusters.

    Parameters
    ----------
    score_fn:
        Callable scoring a pair list into matching probabilities — typically
        ``BatchedPredictor.predict_proba`` (single-threaded use) or
        :meth:`repro.serve.RequestCoalescer.score` (so one executor thread
        owns the model).  ``None`` creates a read-only store (snapshot
        inspection): ``upsert`` and ``query`` raise until
        :meth:`bind_score_fn` provides one.
    config:
        Blocking / clustering knobs; see :class:`StoreConfig`.

    Thread safety: all public methods take the store's internal lock.
    Upserts are serialized (single-writer semantics — the "same input order"
    that batch parity is defined over); queries only hold the lock while
    probing the indexes and aggregating, not while scoring.
    """

    def __init__(self, score_fn: Optional[ScoreFn] = None,
                 config: Optional[StoreConfig] = None,
                 upsert_score_fn: Optional[ScoreFn] = None) -> None:
        self.config = config or StoreConfig()
        self._score_fn = score_fn
        # Optional distinct scorer for the upsert path: upserts hold the
        # store lock while scoring, so a service routes them through the
        # coalescer with max_wait=0 (immediate flush) instead of paying the
        # co-rider deadline a serialized writer can never fill.
        self._upsert_score_fn = upsert_score_fn
        self._lock = threading.RLock()
        config_ = self.config
        self._backend = None
        bucket_stores = None
        if config_.backend == "sqlite":
            # Imported lazily: repro.storage.engine imports this module.
            from ..storage.backends import SQLiteIndexBackend
            self._backend = SQLiteIndexBackend(config_.backend_path)
            bucket_stores = self._backend.bucket_stores(3)
        elif config_.backend != "memory":
            raise ValueError(f"unknown index backend {config_.backend!r} "
                             f"(expected 'memory' or 'sqlite')")
        self._indexes = build_blocking_indexes(
            attributes=config_.blocking_attributes,
            num_perm=config_.num_perm, bands=config_.bands,
            lsh_max_bucket_size=config_.lsh_max_bucket_size,
            max_postings=config_.max_postings,
            initials_max_bucket_size=config_.initials_max_bucket_size,
            min_token_length=config_.min_token_length, seed=config_.seed,
            bucket_stores=bucket_stores)
        self._records: List[Record] = []
        self._position: Dict[str, int] = {}
        # Candidate bookkeeping: pair -> number of live buckets (across all
        # indexes) containing both records; pair -> matching probability.
        self._support: Dict[PairKey, int] = {}
        self._scores: Dict[PairKey, float] = {}
        # Match-edge adjacency (score >= threshold, candidacy alive).
        self._match_adj: Dict[int, Set[int]] = {}
        # Resolved entities: position -> entity id, entity id -> positions.
        self._entity_of: Dict[int, str] = {}
        self._members: Dict[str, List[int]] = {}
        self.counters = _StoreCounters()
        self._commit_hook: Optional[CommitHook] = None
        self._obs = BoundHandles(_bind_store_instruments)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        with self._lock:
            return record_id in self._position

    @property
    def records(self) -> List[Record]:
        """The stored records, in upsert order."""
        with self._lock:
            return list(self._records)

    def bind_score_fn(self, score_fn: ScoreFn,
                      upsert_score_fn: Optional[ScoreFn] = None) -> None:
        """Attach (or replace) the scoring callable(s) of the store.

        ``upsert_score_fn``, when given, is used by the upsert path instead
        of ``score_fn`` (see the constructor); passing only ``score_fn``
        clears any previous override.
        """
        with self._lock:
            self._score_fn = score_fn
            self._upsert_score_fn = upsert_score_fn

    @property
    def lock(self) -> threading.RLock:
        """The store's internal (reentrant) lock.

        The storage engine holds it to freeze a state copy atomically with
        the WAL position; ordinary callers never need it."""
        return self._lock

    def set_commit_hook(self, hook: Optional[CommitHook]) -> None:
        """Install (or clear, with ``None``) the upsert commit hook.

        The hook runs under the store lock after a real (non-idempotent)
        upsert is planned and scored but *before* anything is mutated, with
        ``(record, {pair_id: score}, planned bucket retractions)``.  An
        exception from the hook aborts the upsert with the store untouched —
        which is exactly what lets :class:`repro.storage.Storage` make the
        WAL append a durability barrier.
        """
        with self._lock:
            self._commit_hook = hook

    def close(self) -> None:
        """Release backend resources (the SQLite connection, if any)."""
        if self._backend is not None:
            self._backend.close()

    def entity_of(self, record_id: str) -> str:
        """The entity id currently holding ``record_id``."""
        with self._lock:
            position = self._position.get(record_id)
            if position is None:
                raise KeyError(f"record {record_id!r} is not in the store")
            return self._entity_of[position]

    def entity_members(self, entity_id: str) -> List[str]:
        """Record ids of an entity, sorted."""
        with self._lock:
            members = self._members.get(entity_id)
            if members is None:
                raise KeyError(f"unknown entity {entity_id!r}")
            return sorted(self._records[position].record_id for position in members)

    def entities(self) -> Dict[str, List[str]]:
        """Every entity id mapped to its sorted member record ids."""
        with self._lock:
            return {entity_id: sorted(self._records[position].record_id
                                      for position in members)
                    for entity_id, members in self._members.items()}

    def clusters(self) -> List[List[str]]:
        """Canonical cluster output, comparable to ``ClusterResult.clusters``:
        members sorted by record id, clusters ordered by smallest member."""
        with self._lock:
            groups = [sorted(self._records[position].record_id for position in members)
                      for members in self._members.values()]
        groups.sort(key=lambda members: members[0])
        return groups

    def stats(self) -> Dict[str, float]:
        """Store-level counters for service and bench reports."""
        with self._lock:
            sizes = [len(members) for members in self._members.values()]
            return {
                "records": float(len(self._records)),
                "entities": float(len(self._members)),
                "candidate_pairs": float(len(self._support)),
                "match_edges": float(sum(len(adj) for adj in self._match_adj.values()) // 2),
                "max_entity_size": float(max(sizes)) if sizes else 0.0,
                "upserts": float(self.counters.upserts),
                "queries": float(self.counters.queries),
                "pairs_scored": float(self.counters.pairs_scored),
                "pairs_retracted": float(self.counters.pairs_retracted),
                "edges_retracted": float(self.counters.edges_retracted),
                "resolutions": float(self.counters.resolutions),
            }

    # ------------------------------------------------------------------ #
    # Upsert
    # ------------------------------------------------------------------ #
    def upsert(self, record: Record) -> str:
        """Insert ``record``, update the indexes/edges/clusters, and return
        the entity id it resolved into.

        Re-upserting an identical record is an idempotent no-op.  The store
        is append-only: re-using a record id with *different* content raises
        (give the new version a new record id, as the batch pipeline would
        see two rows).

        Exception safety: the upsert is planned (index preview) and its new
        candidate pairs scored *before* anything is mutated, so a scoring
        failure — model error, coalescer timeout or shutdown — leaves the
        store exactly as it was and the upsert can simply be retried.
        """
        if self._score_fn is None:
            raise RuntimeError("this store has no score_fn (restored read-only?); "
                               "call bind_score_fn() before upserting")
        started = time.perf_counter()
        with self._lock:
            counters_before = (self.counters.pairs_scored,
                               self.counters.pairs_retracted,
                               self.counters.edges_retracted,
                               self.counters.resolutions)
            existing = self._position.get(record.record_id)
            if existing is not None:
                stored = self._records[existing]
                if (stored.source == record.source
                        and dict(stored.attributes) == dict(record.attributes)):
                    return self._entity_of[existing]
                raise ValueError(
                    f"record {record.record_id!r} already exists with different "
                    f"content; the store is append-only — use a new record id "
                    f"for updated versions")

            # Plan: preview every index without mutating.
            position: Optional[int] = None
            emitted: List[Tuple[int, int]] = []
            retracted: List[List[int]] = []
            planned_keys = []
            for index in self._indexes:
                index_position, index_emitted, index_retracted, keys = (
                    index.preview_one(record))
                if position is None:
                    position = index_position
                elif index_position != position:
                    raise RuntimeError("indexes disagree on record positions; "
                                       "the store's indexes were mutated externally")
                emitted.extend(index_emitted)
                retracted.extend(index_retracted)
                planned_keys.append(keys)
            assert position is not None

            # Every emitted pair touches the new record, whose prior support
            # is zero — so the unique cross-source emitted keys are exactly
            # the pairs that become candidates, and their per-bucket
            # multiplicity is their initial support.
            support_delta: Dict[PairKey, int] = {}
            pairs: List[EntityPair] = []
            for member, _ in emitted:
                other = self._records[member]
                if self.config.cross_source_only and other.source == record.source:
                    continue
                key = self._pair_key(member, position)
                if key not in support_delta:
                    # Built exactly as the batch candidate stage builds them:
                    # left is the record with the smaller record id, so pair
                    # ids and encoding-cache entries are shared with batch.
                    left_record, right_record = other, record
                    if left_record.record_id > right_record.record_id:
                        left_record, right_record = right_record, left_record
                    pairs.append(EntityPair(left=left_record, right=right_record,
                                            label=None))
                support_delta[key] = support_delta.get(key, 0) + 1
            new_keys = list(support_delta)

            # Score while the store is still untouched: a failure here must
            # not leave a half-ingested record behind.
            scores = self._score_pairs(pairs, self._upsert_score_fn or self._score_fn)

            # Durability barrier: the commit hook (WAL append) sees the full
            # planned effect of the upsert and runs before any mutation, so
            # both a hook failure and a crash on either side of it leave
            # store state and log consistent.
            if self._commit_hook is not None:
                self._commit_hook(
                    record,
                    {pair.pair_id: float(score)
                     for pair, score in zip(pairs, scores)},
                    [list(members) for members in retracted])
            self.counters.pairs_scored += len(pairs)

            # Commit: indexes, registry, support, scores/edges, clusters.
            for index, keys in zip(self._indexes, planned_keys):
                index.commit_one(record, keys)
            self._records.append(record)
            self._position[record.record_id] = position
            self.counters.upserts += 1

            dirty: Set[int] = {position}
            for key, count in support_delta.items():
                self._support[key] = count
            dirty |= self._apply_retractions(retracted)
            for key, score in zip(new_keys, scores):
                self._scores[key] = float(score)
                if score >= self.config.score_threshold:
                    self._match_adj.setdefault(key[0], set()).add(key[1])
                    self._match_adj.setdefault(key[1], set()).add(key[0])
                    dirty.update(key)
            self._resolve_affected(dirty)
            entity_id = self._entity_of[position]
            deltas = tuple(after - before for after, before in zip(
                (self.counters.pairs_scored, self.counters.pairs_retracted,
                 self.counters.edges_retracted, self.counters.resolutions),
                counters_before))
        instruments = self._obs.get()
        if instruments is not None:
            instruments.upsert_seconds.observe(time.perf_counter() - started)
            instruments.upserts.inc()
            for instrument, delta in zip(
                    (instruments.pairs_scored, instruments.pairs_retracted,
                     instruments.edges_retracted, instruments.resolutions), deltas):
                if delta:
                    instrument.inc(delta)
        return entity_id

    def _score_pairs(self, pairs: Sequence[EntityPair],
                     score_fn: ScoreFn) -> np.ndarray:
        """Run a score function and validate its output shape."""
        if not pairs:
            return np.zeros(0)
        scores = np.asarray(score_fn(pairs), dtype=np.float64)
        if scores.shape != (len(pairs),):
            raise ValueError(f"score_fn returned shape {scores.shape} for "
                             f"{len(pairs)} pairs")
        return scores

    def _pair_key(self, left: int, right: int) -> PairKey:
        return (left, right) if left < right else (right, left)

    def _apply_retractions(self, retracted: Sequence[Sequence[int]]) -> Set[int]:
        """Withdraw overflowed buckets' support; drop dead pairs and edges.

        Returns the positions whose components need re-resolution (endpoints
        of removed match edges).
        """
        dirty: Set[int] = set()
        for members in retracted:
            for left, right in combinations(members, 2):
                key = self._pair_key(left, right)
                support = self._support.get(key)
                if support is None:  # same-source pair, never tracked
                    continue
                if support > 1:
                    self._support[key] = support - 1
                    continue
                # Last live bucket gone: the pair is no longer a candidate.
                # Its score stays archived in _scores — candidacy lives in
                # _support — so snapshots can replay the full stream exactly.
                del self._support[key]
                self.counters.pairs_retracted += 1
                score = self._scores.get(key)
                if score is not None and score >= self.config.score_threshold:
                    self._match_adj[key[0]].discard(key[1])
                    self._match_adj[key[1]].discard(key[0])
                    self.counters.edges_retracted += 1
                    dirty.update(key)
        return dirty

    def _resolve_affected(self, seeds: Set[int]) -> None:
        """Re-run the greedy source-consistent merge over every connected
        component touching ``seeds`` and refresh those entities.

        Greedy decisions are component-local (see
        :func:`~repro.pipeline.clustering.apply_match_edges`), so resolving
        the affected components from singletons reproduces exactly what a
        global batch re-run would assign them.
        """
        if not seeds:
            return
        # Flood-fill the current match graph from the seeds.
        affected: Set[int] = set()
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            if node in affected:
                continue
            affected.add(node)
            frontier.extend(self._match_adj.get(node, ()))

        edges: List[MatchEdge] = []
        for node in affected:
            for neighbor in self._match_adj.get(node, ()):
                if neighbor <= node:
                    continue
                key = (node, neighbor)
                left_id = self._records[node].record_id
                right_id = self._records[neighbor].record_id
                if left_id > right_id:
                    left_id, right_id = right_id, left_id
                edges.append((self._scores[key], left_id, right_id))

        ids = {self._records[position].record_id: position for position in affected}
        union_find = UnionFind(ids)
        cluster_sources = ({record_id: {self._records[position].source}
                            for record_id, position in ids.items()}
                           if self.config.source_consistent else None)
        apply_match_edges(union_find, cluster_sources, order_match_edges(edges))

        # Retire the old entities of every affected record, then rebuild.
        for entity_id in {self._entity_of[position] for position in affected
                          if position in self._entity_of}:
            for member in self._members.pop(entity_id):
                self._entity_of.pop(member, None)
        for group in union_find.groups():
            entity_id = f"e-{group[0]}"
            members = sorted(ids[record_id] for record_id in group)
            self._members[entity_id] = members
            for member in members:
                self._entity_of[member] = entity_id
        self.counters.resolutions += 1

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #
    def query(self, record: Record, top_k: int = 10) -> List[QueryMatch]:
        """Rank the stored entities most likely to hold ``record``.

        A read-only probe: the record is *not* inserted, the indexes are
        probed for live-bucket collisions, the colliding records are scored
        against the probe, and entities are ranked by their best member
        score.  The same cross-source constraint as upserts applies.
        """
        if self._score_fn is None:
            raise RuntimeError("this store has no score_fn (restored read-only?); "
                               "call bind_score_fn() before querying")
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        started = time.perf_counter()
        # Bucket keys are a pure function of the probe record and the index
        # config (the CPU-heavy part of a probe, e.g. MinHash sketching), so
        # they are computed outside the lock: concurrent probes don't
        # serialize, and only the bucket lookups contend with upserts.  (The
        # MinHash token-hash memo is written benignly-racily: values are
        # deterministic, so a lost update merely recomputes.)
        probe_keys = [index.bucket_keys(record) for index in self._indexes]
        with self._lock:
            positions: Set[int] = set()
            for index, keys in zip(self._indexes, probe_keys):
                positions |= index.probe_keys(keys)
            candidates = [position for position in sorted(positions)
                          if self._records[position].record_id != record.record_id
                          and self._is_probe_candidate(record, position)]
            pairs = []
            for position in candidates:
                stored = self._records[position]
                left_record, right_record = record, stored
                if left_record.record_id > right_record.record_id:
                    left_record, right_record = right_record, left_record
                pairs.append(EntityPair(left=left_record, right=right_record, label=None))
            self.counters.queries += 1
        if not pairs:
            self._record_query(started)
            return []

        scores = np.asarray(self._score_fn(pairs), dtype=np.float64)

        with self._lock:
            best: Dict[str, QueryMatch] = {}
            for position, score in zip(candidates, scores):
                entity_id = self._entity_of.get(position)
                if entity_id is None:  # record vanished mid-query (cannot today)
                    continue
                current = best.get(entity_id)
                if current is None or score > current.score:
                    best[entity_id] = QueryMatch(
                        entity_id=entity_id, score=float(score),
                        record_id=self._records[position].record_id,
                        size=len(self._members[entity_id]))
        ranked = sorted(best.values(), key=lambda match: (-match.score, match.entity_id))
        self._record_query(started)
        return ranked[:top_k]

    def query_degraded(self, record: Record, top_k: int = 10) -> List[QueryMatch]:
        """Rank entities from index probes alone — no model, no coalescer.

        The degraded fallback the serving layer uses while its scoring path
        is unavailable (circuit breaker open, executor dead): the probe and
        the candidate filters are *exactly* those of :meth:`query`, so every
        entity returned here is one the healthy path would have scored — the
        degraded answer is a re-ranking of a subset of the healthy
        candidate set, never an invention.  ``score`` is the number of
        blocking indexes the probe collides with the entity's best member
        in (evidence strength, an integer in ``[1, num_indexes]``) — NOT a
        calibrated matching probability.
        """
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        started = time.perf_counter()
        probe_keys = [index.bucket_keys(record) for index in self._indexes]
        with self._lock:
            collisions: Dict[int, int] = {}
            for index, keys in zip(self._indexes, probe_keys):
                for position in index.probe_keys(keys):
                    collisions[position] = collisions.get(position, 0) + 1
            best: Dict[str, QueryMatch] = {}
            for position in sorted(collisions):
                stored = self._records[position]
                if (stored.record_id == record.record_id
                        or not self._is_probe_candidate(record, position)):
                    continue
                entity_id = self._entity_of.get(position)
                if entity_id is None:
                    continue
                count = collisions[position]
                current = best.get(entity_id)
                if current is None or count > current.score:
                    best[entity_id] = QueryMatch(
                        entity_id=entity_id, score=float(count),
                        record_id=stored.record_id,
                        size=len(self._members[entity_id]))
            self.counters.queries += 1
        ranked = sorted(best.values(),
                        key=lambda match: (-match.score, match.entity_id))
        self._record_query(started)
        return ranked[:top_k]

    def _record_query(self, started: float) -> None:
        instruments = self._obs.get()
        if instruments is not None:
            instruments.queries.inc()
            instruments.query_seconds.observe(time.perf_counter() - started)

    def skew_stats(self, top_k: int = 5) -> Dict[str, Dict[str, object]]:
        """Bucket-skew summary of every blocking index (on demand — this
        walks all buckets, so it is a diagnostics call, not a hot path)."""
        with self._lock:
            return {type(index).__name__: index.skew_stats(top_k=top_k)
                    for index in self._indexes}

    def bucket_load_report(self, num_shards: int) -> Dict[str, object]:
        """How this store's buckets would distribute over ``num_shards``.

        Maps every live bucket through the shard hash of
        :mod:`repro.pipeline.sharded` and sums estimated pair loads
        (``C(size, 2)``) per shard — the capacity-planning view for moving a
        store's corpus onto the sharded batch pipeline.  Diagnostics call:
        walks every bucket under the store lock.
        """
        from ..obs.stats import gini
        from ..pipeline.sharded import shard_of_key

        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        loads = [0] * num_shards
        live_buckets = 0
        dead_buckets = 0
        with self._lock:
            for index_id, index in enumerate(self._indexes):
                cap = index.max_bucket_size
                for key, size in index.bucket_sizes().items():
                    if size > cap:
                        dead_buckets += 1
                        continue
                    if size < 2:
                        continue
                    live_buckets += 1
                    loads[shard_of_key(index_id, key, num_shards)] += (
                        size * (size - 1) // 2)
        return {
            "num_shards": num_shards,
            "live_buckets": live_buckets,
            "dead_buckets": dead_buckets,
            "shard_loads": loads,
            "total_pair_load": sum(loads),
            "gini": gini(loads),
        }

    def _is_probe_candidate(self, record: Record, position: int) -> bool:
        if not self.config.cross_source_only:
            return True
        return self._records[position].source != record.source

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def freeze_state(self) -> Dict[str, object]:
        """A consistent, no-longer-shared copy of the full store state.

        Takes the lock only for cheap Python copies (lists, dicts, the
        index state dicts) — the copy-under-lock half of the snapshot
        protocol; pass the result to :meth:`serialize_state` outside the
        lock.  Unlike the legacy directory snapshot this also captures the
        index bucket state, so loading it back is a deserialization, not an
        upsert replay.
        """
        with self._lock:
            return {
                "config": self.config,
                "records": list(self._records),
                "scores": dict(self._scores),
                "support": dict(self._support),
                "members": {entity_id: list(members)
                            for entity_id, members in self._members.items()},
                "counters": replace(self.counters),
                "indexes": [index.state_dict() for index in self._indexes],
            }

    @staticmethod
    def serialize_state(frozen: Dict[str, object]) -> Dict[str, object]:
        """JSON-ready form of a :meth:`freeze_state` copy (lock-free)."""
        return {
            "format_version": STATE_FORMAT_VERSION,
            "config": frozen["config"].as_dict(),
            "records": [record.to_dict() for record in frozen["records"]],
            "scores": {_pair_key_str(key): score
                       for key, score in frozen["scores"].items()},
            "support": {_pair_key_str(key): count
                        for key, count in frozen["support"].items()},
            "members": frozen["members"],
            "counters": asdict(frozen["counters"]),
            "indexes": frozen["indexes"],
        }

    def state_dict(self) -> Dict[str, object]:
        """:meth:`freeze_state` + :meth:`serialize_state` in one call."""
        return self.serialize_state(self.freeze_state())

    @classmethod
    def from_state_dict(cls, payload: Mapping[str, object],
                        score_fn: Optional[ScoreFn] = None) -> "EntityStore":
        """Rebuild a store from a :meth:`state_dict` payload — a pure
        deserialization (indexes included), O(state) rather than O(corpus)
        replay.  Without ``score_fn`` the store is read-only until
        :meth:`bind_score_fn`."""
        version = payload.get("format_version")
        if version not in SUPPORTED_STATE_VERSIONS:
            raise ValueError(f"unsupported store state version {version!r} "
                             f"(supported: {SUPPORTED_STATE_VERSIONS})")
        config = StoreConfig.from_dict(payload["config"])
        store = cls(score_fn=score_fn, config=config)
        for index, state in zip(store._indexes, payload["indexes"]):
            index.load_state_dict(state)
        store._records = [Record.from_dict(item) for item in payload["records"]]
        store._position = {record.record_id: position
                           for position, record in enumerate(store._records)}
        store._scores = {_parse_pair_key(key): float(score)
                         for key, score in payload["scores"].items()}
        store._support = {_parse_pair_key(key): int(count)
                          for key, count in payload["support"].items()}
        # Match edges are derivable: live candidacy (support) + archived
        # score over the threshold.
        for key in store._support:
            if store._scores.get(key, 0.0) >= config.score_threshold:
                store._match_adj.setdefault(key[0], set()).add(key[1])
                store._match_adj.setdefault(key[1], set()).add(key[0])
        store._members = {entity_id: [int(member) for member in members]
                          for entity_id, members in payload["members"].items()}
        store._entity_of = {member: entity_id
                            for entity_id, members in store._members.items()
                            for member in members}
        known = {field.name for field in fields(_StoreCounters)}
        store.counters = _StoreCounters(
            **{key: int(value)
               for key, value in dict(payload.get("counters", {})).items()
               if key in known})
        return store

    def snapshot(self, path: Union[str, Path]) -> Path:
        """Write the store to ``path`` (a directory).

        The snapshot holds the record stream (in upsert order), every live
        candidate pair's score, the config and the resolved entities; that is
        sufficient for a bit-exact :meth:`restore` without the model.

        Upserts are only blocked while the state is *copied*; serialization
        and file writes happen outside the lock, and both files are
        published with a temp-file + atomic-rename so readers never see a
        half-written snapshot.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        with self._lock:
            records = list(self._records)
            # Keyed like EntityPair.pair_id: record ids in string order.
            scores = {"|".join(sorted((records[left].record_id,
                                       records[right].record_id))): score
                      for (left, right), score in self._scores.items()}
            entities = {entity_id: sorted(records[position].record_id
                                          for position in members)
                        for entity_id, members in self._members.items()}
            counters = asdict(self.counters)
        tmp_records = path / ".records.jsonl.tmp"
        with tmp_records.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp_records, path / "records.jsonl")
        tmp_store = path / ".store.json.tmp"
        save_json({
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "config": self.config.as_dict(),
            "num_records": len(records),
            "scores": scores,
            "entities": entities,
            "counters": counters,
        }, tmp_store)
        os.replace(tmp_store, path / "store.json")
        return path

    @classmethod
    def restore(cls, path: Union[str, Path],
                score_fn: Optional[ScoreFn] = None) -> "EntityStore":
        """Rebuild a store from a :meth:`snapshot` directory, bit-exactly.

        The record stream is replayed through the normal upsert path with the
        snapshot's stored scores standing in for the model, so the restored
        indexes, candidate set and clusters are identical to the snapshotted
        ones — no model required at restore time.  ``score_fn`` (optional) is
        bound afterwards for further upserts/queries; without it the store is
        read-only.
        """
        path = Path(path)
        state = load_json(path / "store.json")
        version = state.get("format_version")
        if version not in SUPPORTED_SNAPSHOT_VERSIONS:
            raise ValueError(f"unsupported snapshot format version {version!r} "
                             f"(supported: {SUPPORTED_SNAPSHOT_VERSIONS})")
        config = StoreConfig.from_dict(state["config"])
        stored_scores: Dict[str, float] = state["scores"]

        def replay_scores(pairs: Sequence[EntityPair]) -> np.ndarray:
            try:
                return np.array([stored_scores[pair.pair_id] for pair in pairs])
            except KeyError as error:
                raise ValueError(f"snapshot at {path} is missing the score for "
                                 f"pair {error.args[0]!r}; it was not written by "
                                 f"a matching store") from error

        store = cls(score_fn=replay_scores, config=config)
        with (path / "records.jsonl").open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    store.upsert(Record.from_dict(json.loads(line)))
        if len(store) != int(state["num_records"]):
            raise ValueError(f"snapshot at {path} holds {state['num_records']} "
                             f"records but {len(store)} were replayed")
        # Tolerate counter schema drift across snapshot generations: unknown
        # keys are dropped, missing ones keep the replayed values (mirrors
        # the obs export schema-versioning convention).
        known = {field.name for field in fields(_StoreCounters)}
        saved_counters = {key: int(value)
                          for key, value in dict(state.get("counters", {})).items()
                          if key in known}
        store.counters = replace(store.counters, **saved_counters)
        store._score_fn = score_fn
        return store
