"""Online entity-linkage serving: incremental store + coalesced inference.

The batch pipeline (:mod:`repro.pipeline`) links a frozen corpus; this
package serves linkage *online*, one record or query at a time:

* :mod:`~repro.serve.store` — :class:`EntityStore`, a persistent store of
  resolved clusters with incremental index/edge/cluster maintenance,
  ``upsert(record) -> entity_id`` / ``query(record) -> ranked entities``, and
  snapshot/restore persistence.  Streaming upserts produce exactly the
  clusters a batch ``LinkagePipeline.run`` would (parity is tested);
* :mod:`~repro.serve.coalescer` — :class:`RequestCoalescer`, the
  latency-bounded micro-batcher: concurrent callers enqueue, one executor
  thread fuses requests and flushes on batch-size *or* deadline, with a
  bounded queue for backpressure;
* :mod:`~repro.serve.service` — :class:`LinkageService`, the deployable
  front end wiring store and coalescer;
* :mod:`~repro.serve.loadgen` — load replay + p50/p95/p99 latency reports,
  reused by the ``serve_online`` bench stage;
* ``python -m repro.serve --demo`` — stream a Music-3K corpus record-by-
  record and verify cluster parity against the batch pipeline.
"""

from .coalescer import (CoalescerClosed, CoalescerQueueFull, PendingScore,
                        RequestCoalescer)
from .loadgen import (LoadReport, latency_percentiles, replay_queries,
                      replay_upserts)
from .service import LinkageService, QueryResult, ServiceConfig, UpsertResult
from .store import EntityStore, QueryMatch, StoreConfig

__all__ = [
    "CoalescerClosed",
    "CoalescerQueueFull",
    "EntityStore",
    "LinkageService",
    "LoadReport",
    "PendingScore",
    "QueryMatch",
    "QueryResult",
    "RequestCoalescer",
    "ServiceConfig",
    "StoreConfig",
    "UpsertResult",
    "latency_percentiles",
    "replay_queries",
    "replay_upserts",
]
