"""The online linkage service: entity store + request coalescer, wired.

:class:`LinkageService` is the deployable front end of the serving
subsystem.  It owns

* a :class:`~repro.serve.RequestCoalescer` whose executor thread is the only
  caller of the model (autograd mode is process-wide, so model forwards must
  be single-threaded), and
* an :class:`~repro.serve.EntityStore` whose scoring is routed through that
  coalescer — so concurrent queries *and* the upsert path share the same
  fused micro-batches.

Clients call :meth:`upsert` / :meth:`query` from their own threads; there is
no internal worker pool.  Upserts serialize on the store lock (single-writer
semantics — batch parity is defined over one input order), while queries from
many threads coalesce into deadline-bounded batches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # layering: repro.storage sits above repro.serve
    from ..storage.engine import Storage

from .. import obs
from ..data.records import Record
from ..infer.predictor import BatchedPredictor
from ..obs.slo import (SLOConfig, SLOMonitor, default_service_objectives,
                       worst_status)
from ..resilience import faults
from ..resilience.breaker import CircuitBreaker, CircuitOpen
from .coalescer import RequestCoalescer
from .store import EntityStore, QueryMatch, StoreConfig

__all__ = ["LinkageService", "ServiceConfig", "UpsertResult", "QueryResult"]


@dataclass(frozen=True)
class ServiceConfig:
    """Coalescing, ranking and degradation knobs of the service.

    ``breaker_failure_threshold`` consecutive scoring failures open the
    circuit breaker around the coalescer/model executor; while it is open
    (and for failed half-open probes after ``breaker_recovery_seconds``),
    queries fall back to index-only degraded answers and upserts fail fast
    with :class:`~repro.resilience.CircuitOpen` — see ``docs/resilience.md``.
    """

    max_batch_size: int = 64
    max_wait_ms: float = 5.0
    max_queue_size: int = 4096
    top_k: int = 5
    request_timeout: Optional[float] = 30.0
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 30.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "max_queue_size": self.max_queue_size,
            "top_k": self.top_k,
            "request_timeout": self.request_timeout,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_recovery_seconds": self.breaker_recovery_seconds,
        }


@dataclass(frozen=True)
class UpsertResult:
    """Outcome of one online upsert."""

    record_id: str
    entity_id: str
    seconds: float


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one online query.

    ``degraded=True`` marks an answer produced by the index-only fallback
    (:meth:`EntityStore.query_degraded`) while the scoring path was
    unavailable — its scores are collision counts, not probabilities.
    """

    matches: List[QueryMatch]
    seconds: float
    degraded: bool = False

    @property
    def best(self) -> Optional[QueryMatch]:
        return self.matches[0] if self.matches else None


class LinkageService:
    """Serve `upsert(record) -> entity` and `query(record) -> candidates`.

    Parameters
    ----------
    predictor:
        The fitted :class:`~repro.infer.BatchedPredictor`.  Only the
        coalescer's executor thread calls it.
    store_config / service_config:
        Knobs for the store and the coalescing front end.
    store:
        An existing store to serve (e.g. restored from a snapshot); its
        scoring is re-bound to this service's coalescer.  Default: a fresh
        store built from ``store_config``.
    storage:
        A :class:`repro.storage.Storage` engine to serve durably: upserts
        route through it (WAL append + auto-snapshot cadence), its store
        becomes the service's store, and per-append fsync latencies feed
        the ``wal_fsync_latency`` SLO.  Mutually exclusive with ``store`` /
        ``store_config``.
    slo_objectives:
        The SLO catalog :meth:`health` evaluates (see
        :func:`repro.obs.slo.default_service_objectives` for the defaults).
        Recording is always on — a few deque appends per request — so health
        reports work without enabling full telemetry.
    """

    def __init__(self, predictor: BatchedPredictor,
                 store_config: Optional[StoreConfig] = None,
                 service_config: Optional[ServiceConfig] = None,
                 store: Optional[EntityStore] = None,
                 storage: Optional["Storage"] = None,
                 slo_objectives: Optional[Sequence[SLOConfig]] = None) -> None:
        if store is not None and store_config is not None:
            raise ValueError("pass either an existing store or a store_config, not both")
        if storage is not None and (store is not None or store_config is not None):
            raise ValueError("pass either a storage engine or a "
                             "store/store_config, not both")
        self.predictor = predictor
        self.config = service_config or ServiceConfig()
        self.slo = SLOMonitor(default_service_objectives()
                              if slo_objectives is None else slo_objectives)
        self.coalescer = RequestCoalescer(
            predictor.predict_proba,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_size=self.config.max_queue_size,
            queue_sample_fn=self._record_queue_saturation,
        )
        self.storage = storage
        if storage is not None:
            self.store = storage.store
            storage.fsync_listener = self._record_wal_fsync
        else:
            self.store = store if store is not None else EntityStore(config=store_config)
        self.store.bind_score_fn(self._score, upsert_score_fn=self._score_upsert)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_seconds=self.config.breaker_recovery_seconds)
        self._degraded_queries = 0
        self._deadline = threading.local()
        self._started_at: Optional[float] = None

    def _score(self, pairs):
        return self._score_guarded(pairs, max_wait=None)

    def _score_upsert(self, pairs):
        # Upserts are serialized on the store lock, so waiting out the
        # coalescer deadline for co-riders would only cap ingest throughput
        # (and stall queries behind the lock): ask for an immediate flush —
        # still fused with any queries already queued.
        return self._score_guarded(pairs, max_wait=0.0)

    def _score_guarded(self, pairs, max_wait: Optional[float]):
        """The one gate onto the scoring path: breaker around the coalescer.

        Every model-backed scoring call (queries and upserts alike) passes
        through here, so ``breaker_failure_threshold`` consecutive scoring
        errors — wherever they originate — trip the breaker, and the first
        successful half-open probe closes it again.
        """
        if not self.breaker.allow():
            raise CircuitOpen("serving scoring path is open "
                              "(circuit breaker tripped)")
        try:
            faults.check("serve.score", pairs=len(pairs))
            kwargs = {} if max_wait is None else {"max_wait": max_wait}
            scores = self.coalescer.score(pairs, timeout=self._remaining(),
                                          **kwargs)
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return scores

    # ------------------------------------------------------------------ #
    # Deadline propagation (thread-local: requests run on caller threads)
    # ------------------------------------------------------------------ #
    def _set_deadline(self, timeout: Optional[float]) -> None:
        self._deadline.until = (time.monotonic() + timeout
                                if timeout is not None else None)

    def _clear_deadline(self) -> None:
        self._deadline.until = None

    def _remaining(self) -> Optional[float]:
        """Seconds the current request may still spend waiting on scores.

        The minimum of the per-request deadline (set by ``query``/``upsert``
        ``timeout=``) and the service-wide ``request_timeout``; raises
        ``TimeoutError`` when the request's budget is already exhausted, so
        a late request fails before queueing pairs it can never collect.
        """
        until = getattr(self._deadline, "until", None)
        if until is None:
            return self.config.request_timeout
        remaining = until - time.monotonic()
        if remaining <= 0:
            raise TimeoutError("request deadline exhausted before scoring")
        if self.config.request_timeout is None:
            return remaining
        return min(remaining, self.config.request_timeout)

    # ------------------------------------------------------------------ #
    # SLO recording (always on; a custom catalog may drop objectives, so
    # every recording site checks membership first)
    # ------------------------------------------------------------------ #
    def _record_queue_saturation(self, saturation: float) -> None:
        if "coalescer_queue_saturation" in self.slo:
            self.slo.record("coalescer_queue_saturation", saturation)

    def _record_wal_fsync(self, seconds: float) -> None:
        if "wal_fsync_latency" in self.slo:
            self.slo.record("wal_fsync_latency", seconds)

    def _record_request(self, objective: str, seconds: float, ok: bool) -> None:
        if ok and objective in self.slo:
            self.slo.record(objective, seconds)
        if "serve_error_rate" in self.slo:
            self.slo.record("serve_error_rate", 0.0 if ok else 1.0, good=ok)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "LinkageService":
        self.coalescer.start()
        self._started_at = time.monotonic()
        return self

    def stop(self) -> None:
        self.coalescer.stop()

    def __enter__(self) -> "LinkageService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def upsert(self, record: Record,
               timeout: Optional[float] = None) -> UpsertResult:
        """Link one record online; returns its entity id and latency.

        ``timeout`` bounds the whole request: the remaining budget is
        propagated to the scoring wait inside the store's upsert.  An upsert
        cannot degrade — committing a record without model scores would
        corrupt the store — so an open breaker (:class:`CircuitOpen`) or a
        read-only storage engine (:class:`~repro.storage.StorageReadOnly`)
        propagates to the caller as a fast failure.
        """
        start = time.perf_counter()
        self._set_deadline(timeout)
        try:
            with obs.trace("serve.upsert", record_id=record.record_id) as span:
                entity_id = (self.storage.upsert(record)
                             if self.storage is not None
                             else self.store.upsert(record))
                span.set("entity_id", entity_id)
        except BaseException:
            self._record_request("serve_upsert_latency",
                                 time.perf_counter() - start, ok=False)
            raise
        finally:
            self._clear_deadline()
        seconds = time.perf_counter() - start
        self._record_request("serve_upsert_latency", seconds, ok=True)
        return UpsertResult(record_id=record.record_id, entity_id=entity_id,
                            seconds=seconds)

    def query(self, record: Record, top_k: Optional[int] = None,
              timeout: Optional[float] = None) -> QueryResult:
        """Rank stored entities for a probe record; returns matches + latency.

        When the scoring path fails (breaker open, executor dead, deadline
        exhausted), the query does not error: it falls back to the store's
        index-only ranking and returns ``degraded=True`` — availability over
        score quality, with the degradation visible in the result, the
        ``resilience_degraded_queries_total`` counter and :meth:`health`.
        """
        start = time.perf_counter()
        k = self.config.top_k if top_k is None else top_k
        self._set_deadline(timeout)
        degraded = False
        try:
            with obs.trace("serve.query", record_id=record.record_id) as span:
                try:
                    matches = self.store.query(record, top_k=k)
                except Exception:
                    matches = self.store.query_degraded(record, top_k=k)
                    degraded = True
                    self._degraded_queries += 1
                    obs.counter("resilience_degraded_queries_total",
                                "Queries answered from index probes alone"
                                ).inc()
                span.set("matches", len(matches))
                span.set("degraded", degraded)
        except BaseException:
            self._record_request("serve_query_latency",
                                 time.perf_counter() - start, ok=False)
            raise
        finally:
            self._clear_deadline()
        seconds = time.perf_counter() - start
        self._record_request("serve_query_latency", seconds, ok=True)
        return QueryResult(matches=matches, seconds=seconds, degraded=degraded)

    def snapshot(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the store.

        With a ``path``, write a legacy directory snapshot
        (:meth:`EntityStore.snapshot`).  Without one, the service must be
        running over a storage engine: publish a compacted engine snapshot
        into its data directory (:meth:`repro.storage.Storage.snapshot`).
        """
        if path is None:
            if self.storage is None:
                raise ValueError("snapshot() without a path needs a storage "
                                 "engine (LinkageService(storage=...))")
            return self.storage.snapshot()
        return self.store.snapshot(path)

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Evaluate every SLO; ``status`` is the worst objective's verdict.

        See :meth:`repro.obs.slo.SLOMonitor.health` for the shape — this
        adds the service's uptime and a ``resilience`` section (breaker
        state, degraded-query count, storage writability), folding the
        degradation signals into ``status``: an open breaker or a read-only
        storage engine reports ``breached`` even while every latency SLO
        passes — the service is up, but not delivering full answers.
        """
        report = self.slo.health()
        breaker = self.breaker.stats()
        storage_read_only = bool(self.storage is not None
                                 and self.storage.read_only)
        report["resilience"] = {
            "breaker": breaker,
            "degraded_queries": self._degraded_queries,
            "storage_read_only": storage_read_only,
        }
        # Neutral is "no_data", not "pass": a healthy breaker must never
        # lift a no-traffic report's overall verdict.
        if breaker["state"] == "open" or storage_read_only:
            resilience_status = "breached"
        elif breaker["state"] == "half_open":
            resilience_status = "burning"
        else:
            resilience_status = "no_data"
        report["status"] = worst_status(str(report["status"]),
                                        resilience_status)
        report["uptime_seconds"] = (time.monotonic() - self._started_at
                                    if self._started_at is not None else 0.0)
        return report

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Nested store / coalescer / predictor counters."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        service = {"uptime_seconds": uptime,
                   "max_batch_size": float(self.config.max_batch_size),
                   "max_wait_ms": float(self.config.max_wait_ms),
                   "max_queue_size": float(self.config.max_queue_size),
                   "degraded_queries": float(self._degraded_queries)}
        report = {
            "service": service,
            "store": self.store.stats(),
            "coalescer": self.coalescer.stats(),
            "predictor": {key: float(value)
                          for key, value in self.predictor.stats().items()},
        }
        if self.storage is not None:
            report["storage"] = {key: float(value)
                                 for key, value in self.storage.stats().items()}
        return report
