"""The online linkage service: entity store + request coalescer, wired.

:class:`LinkageService` is the deployable front end of the serving
subsystem.  It owns

* a :class:`~repro.serve.RequestCoalescer` whose executor thread is the only
  caller of the model (autograd mode is process-wide, so model forwards must
  be single-threaded), and
* an :class:`~repro.serve.EntityStore` whose scoring is routed through that
  coalescer — so concurrent queries *and* the upsert path share the same
  fused micro-batches.

Clients call :meth:`upsert` / :meth:`query` from their own threads; there is
no internal worker pool.  Upserts serialize on the store lock (single-writer
semantics — batch parity is defined over one input order), while queries from
many threads coalesce into deadline-bounded batches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import obs
from ..data.records import Record
from ..infer.predictor import BatchedPredictor
from .coalescer import RequestCoalescer
from .store import EntityStore, QueryMatch, StoreConfig

__all__ = ["LinkageService", "ServiceConfig", "UpsertResult", "QueryResult"]


@dataclass(frozen=True)
class ServiceConfig:
    """Coalescing and ranking knobs of the service."""

    max_batch_size: int = 64
    max_wait_ms: float = 5.0
    max_queue_size: int = 4096
    top_k: int = 5
    request_timeout: Optional[float] = 30.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "max_queue_size": self.max_queue_size,
            "top_k": self.top_k,
            "request_timeout": self.request_timeout,
        }


@dataclass(frozen=True)
class UpsertResult:
    """Outcome of one online upsert."""

    record_id: str
    entity_id: str
    seconds: float


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one online query."""

    matches: List[QueryMatch]
    seconds: float

    @property
    def best(self) -> Optional[QueryMatch]:
        return self.matches[0] if self.matches else None


class LinkageService:
    """Serve `upsert(record) -> entity` and `query(record) -> candidates`.

    Parameters
    ----------
    predictor:
        The fitted :class:`~repro.infer.BatchedPredictor`.  Only the
        coalescer's executor thread calls it.
    store_config / service_config:
        Knobs for the store and the coalescing front end.
    store:
        An existing store to serve (e.g. restored from a snapshot); its
        scoring is re-bound to this service's coalescer.  Default: a fresh
        store built from ``store_config``.
    """

    def __init__(self, predictor: BatchedPredictor,
                 store_config: Optional[StoreConfig] = None,
                 service_config: Optional[ServiceConfig] = None,
                 store: Optional[EntityStore] = None) -> None:
        if store is not None and store_config is not None:
            raise ValueError("pass either an existing store or a store_config, not both")
        self.predictor = predictor
        self.config = service_config or ServiceConfig()
        self.coalescer = RequestCoalescer(
            predictor.predict_proba,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_size=self.config.max_queue_size,
        )
        self.store = store if store is not None else EntityStore(config=store_config)
        self.store.bind_score_fn(self._score, upsert_score_fn=self._score_upsert)
        self._started_at: Optional[float] = None

    def _score(self, pairs):
        return self.coalescer.score(pairs, timeout=self.config.request_timeout)

    def _score_upsert(self, pairs):
        # Upserts are serialized on the store lock, so waiting out the
        # coalescer deadline for co-riders would only cap ingest throughput
        # (and stall queries behind the lock): ask for an immediate flush —
        # still fused with any queries already queued.
        return self.coalescer.score(pairs, timeout=self.config.request_timeout,
                                    max_wait=0.0)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "LinkageService":
        self.coalescer.start()
        self._started_at = time.monotonic()
        return self

    def stop(self) -> None:
        self.coalescer.stop()

    def __enter__(self) -> "LinkageService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request handlers
    # ------------------------------------------------------------------ #
    def upsert(self, record: Record) -> UpsertResult:
        """Link one record online; returns its entity id and latency."""
        start = time.perf_counter()
        with obs.trace("serve.upsert", record_id=record.record_id) as span:
            entity_id = self.store.upsert(record)
            span.set("entity_id", entity_id)
        return UpsertResult(record_id=record.record_id, entity_id=entity_id,
                            seconds=time.perf_counter() - start)

    def query(self, record: Record, top_k: Optional[int] = None) -> QueryResult:
        """Rank stored entities for a probe record; returns matches + latency."""
        start = time.perf_counter()
        with obs.trace("serve.query", record_id=record.record_id) as span:
            matches = self.store.query(
                record, top_k=self.config.top_k if top_k is None else top_k)
            span.set("matches", len(matches))
        return QueryResult(matches=matches, seconds=time.perf_counter() - start)

    def snapshot(self, path: Union[str, Path]) -> Path:
        """Persist the store (see :meth:`EntityStore.snapshot`)."""
        return self.store.snapshot(path)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Nested store / coalescer / predictor counters."""
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        service = {"uptime_seconds": uptime,
                   "max_batch_size": float(self.config.max_batch_size),
                   "max_wait_ms": float(self.config.max_wait_ms),
                   "max_queue_size": float(self.config.max_queue_size)}
        return {
            "service": service,
            "store": self.store.stats(),
            "coalescer": self.coalescer.stats(),
            "predictor": {key: float(value)
                          for key, value in self.predictor.stats().items()},
        }
