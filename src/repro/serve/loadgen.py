"""Load generation and latency reporting for the online linkage service.

The bench harness needs more than wall-clock totals: an online service is
judged by its latency *distribution* under concurrency.  This module replays
a record stream against a :class:`~repro.serve.LinkageService` — upserts
sequentially (single-writer semantics), queries from ``num_workers``
concurrent threads — and reports throughput plus p50/p95/p99 latencies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.records import Record
from ..obs.stats import PERCENTILE_POINTS, percentiles
from .service import LinkageService

__all__ = ["LoadReport", "latency_percentiles", "replay_upserts", "replay_queries"]


def latency_percentiles(samples: Sequence[float],
                        points: Sequence[int] = PERCENTILE_POINTS) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a latency sample list.

    Thin alias of :func:`repro.obs.stats.percentiles` (the one home of the
    percentile math), kept for the serve-layer import path.
    """
    return percentiles(samples, points)


@dataclass
class LoadReport:
    """Throughput + latency distribution of one replay run."""

    operation: str
    operations: int
    num_workers: int
    seconds: float
    latencies: List[float] = field(default_factory=list)
    errors: int = 0

    @property
    def throughput(self) -> float:
        """Operations per second of wall-clock."""
        return self.operations / self.seconds if self.seconds > 0 else 0.0

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies)


def replay_upserts(service: LinkageService, records: Sequence[Record]) -> LoadReport:
    """Stream ``records`` through ``service.upsert`` one at a time.

    Upserts are deliberately sequential: batch parity is defined over one
    input order, and the store serializes writers anyway.  Per-record latency
    is still measured, so ingest percentiles land in the report.
    """
    latencies: List[float] = []
    start = time.perf_counter()
    for record in records:
        latencies.append(service.upsert(record).seconds)
    seconds = time.perf_counter() - start
    return LoadReport(operation="upsert", operations=len(records), num_workers=1,
                      seconds=seconds, latencies=latencies)


def replay_queries(service: LinkageService, records: Sequence[Record],
                   num_workers: int = 4, top_k: Optional[int] = None) -> LoadReport:
    """Fire ``records`` as concurrent queries from ``num_workers`` threads.

    Workers pull from one shared cursor, so the arrival process genuinely
    interleaves and the coalescer sees concurrent submissions to fuse.
    """
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    cursor_lock = threading.Lock()
    cursor = iter(records)
    results: List[List[Tuple[float, bool]]] = [[] for _ in range(num_workers)]

    def worker(slot: List[Tuple[float, bool]]) -> None:
        while True:
            with cursor_lock:
                record = next(cursor, None)
            if record is None:
                return
            try:
                result = service.query(record, top_k=top_k)
                slot.append((result.seconds, True))
            except Exception:
                slot.append((0.0, False))

    threads = [threading.Thread(target=worker, args=(results[i],), daemon=True)
               for i in range(num_workers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start

    latencies = [latency for slot in results for latency, ok in slot if ok]
    errors = sum(1 for slot in results for _, ok in slot if not ok)
    return LoadReport(operation="query", operations=len(latencies),
                      num_workers=num_workers, seconds=seconds,
                      latencies=latencies, errors=errors)
