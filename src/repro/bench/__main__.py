"""CLI entry point: ``python -m repro.bench``.

Runs the benchmark suite at a chosen scale and writes ``BENCH_core.json``,
or — with ``--check`` — compares a fresh run against a committed snapshot and
exits non-zero when a timed stage regressed beyond the tolerance.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..utils.serialization import load_json, save_json
from .runner import (SCALE_NAMES, STAGES, find_regressions, list_stages,
                     reset_process_caches, run_suite)

DEFAULT_SNAPSHOT = "BENCH_core.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time every figure/table reproduction and emit a perf snapshot.",
    )
    parser.add_argument("--scale", choices=SCALE_NAMES, default=None,
                        help="workload scale (default: $REPRO_BENCH_SCALE or 'bench')")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed for every stage (default: $REPRO_BENCH_SEED or 0)")
    parser.add_argument("--stages", default=None,
                        help="comma-separated subset of stages to run (default: all)")
    parser.add_argument("--output", default=None,
                        help=f"where to write the snapshot (default: {DEFAULT_SNAPSHOT}; "
                             "with --check nothing is written unless set explicitly)")
    parser.add_argument("--check", nargs="?", const=DEFAULT_SNAPSHOT, default=None,
                        metavar="BASELINE",
                        help="compare against a committed snapshot (default baseline: "
                             f"{DEFAULT_SNAPSHOT}) and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative slowdown per stage for --check (default 0.25)")
    parser.add_argument("--retries", type=int, default=2,
                        help="with --check, re-run stages that appear regressed up to "
                             "this many times and keep each stage's best wall-clock, "
                             "so one noisy measurement cannot fail the gate (default 2)")
    parser.add_argument("--export", default=None, metavar="JSONL",
                        help="enable telemetry for the suite and write a metrics + "
                             "trace export (view with python -m repro.obs)")
    parser.add_argument("--list", action="store_true", dest="list_stages",
                        help="list available stages and exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_stages:
        for name, description in list_stages():
            print(f"{name:20s} {description}")
        return 0

    stages = [name.strip() for name in args.stages.split(",")] if args.stages else None
    if stages is not None:
        known = {name for name, _ in list_stages()}
        unknown = [name for name in stages if name not in known]
        if unknown:
            print(f"error: unknown bench stages {unknown}; available: {sorted(known)}",
                  file=sys.stderr)
            return 2

    baseline = None
    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            print(f"error: baseline snapshot {baseline_path} does not exist", file=sys.stderr)
            return 2
        baseline = load_json(baseline_path)

    progress = lambda message: print(message, flush=True)
    if args.export is None:
        payload = run_suite(scale_name=args.scale, seed=args.seed, stages=stages,
                            progress=progress)
    else:
        from .. import obs

        with obs.telemetry():
            payload = run_suite(scale_name=args.scale, seed=args.seed, stages=stages,
                                progress=progress)
            export_path = obs.write_export(args.export)
        print(f"wrote telemetry export to {export_path} "
              f"(view: python -m repro.obs --from-export {export_path})")

    print()
    print(f"scale={payload['scale']} seed={payload['seed']} "
          f"total={payload['total_seconds']:.2f}s")
    for name, entry in payload["stages"].items():
        extras = {key: value for key, value in entry.items() if key != "seconds"}
        suffix = f"  {extras}" if extras else ""
        print(f"  {name:20s} {entry['seconds']:8.2f}s{suffix}")

    output = args.output
    if output is None and args.check is None:
        output = DEFAULT_SNAPSHOT
    if output is not None:
        save_json(payload, output)
        print(f"\nwrote {output}")

    if baseline is not None:
        if stages is not None:
            # Explicit stage subset: gate only the stages that actually ran.
            baseline = dict(baseline)
            baseline["stages"] = {name: entry
                                  for name, entry in baseline.get("stages", {}).items()
                                  if name in payload["stages"]}
        problems = find_regressions(payload, baseline, tolerance=args.tolerance)
        # Wall-clock timing is noisy (especially on shared CI runners), so a
        # stage only fails the gate if it stays over budget across best-of-N
        # re-runs: re-time just the regressed stages and keep each stage's
        # fastest measurement.
        known_stages = {stage.name for stage in STAGES}
        for attempt in range(1, args.retries + 1):
            retry_names = [name for name, _ in problems
                           if name is not None and name in known_stages]
            if not retry_names:
                break
            print(f"\nre-timing {len(retry_names)} regressed stage(s) "
                  f"(attempt {attempt}/{args.retries}): {', '.join(retry_names)}",
                  flush=True)
            # Re-time under the same conditions as the original cold-process
            # run — warm process-wide caches would mask a real regression.
            reset_process_caches()
            rerun = run_suite(scale_name=args.scale, seed=args.seed, stages=retry_names,
                              progress=lambda message: print(message, flush=True))
            for name, entry in rerun["stages"].items():
                if entry["seconds"] < payload["stages"][name]["seconds"]:
                    payload["stages"][name] = entry
            problems = find_regressions(payload, baseline, tolerance=args.tolerance)
        if problems:
            print("\nPERF GATE FAILED:", file=sys.stderr)
            for _, problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"\nperf gate passed (tolerance +{args.tolerance:.0%} per stage)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
