"""Benchmark runner package (``python -m repro.bench``).

Times every figure/table reproduction at a chosen workload scale, emits the
``BENCH_core.json`` perf snapshot, and gates CI against regressions.
"""

from .runner import (
    BENCH_SCHEMA_VERSION,
    STAGES,
    BenchStage,
    check_regressions,
    find_regressions,
    list_stages,
    run_suite,
    select_scale,
    select_seed,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchStage",
    "STAGES",
    "run_suite",
    "check_regressions",
    "find_regressions",
    "list_stages",
    "select_scale",
    "select_seed",
]
