"""Benchmark runner: times every figure/table reproduction at a chosen scale.

The runner mirrors the workloads of the pytest suite under ``benchmarks/``
(one stage per paper figure/table, plus an encoder micro-stage measuring the
vectorised-vs-reference encoding speedup), times each stage, and emits a
``BENCH_core.json`` perf snapshot.  ``check_regressions`` compares a fresh run
against a committed snapshot so CI can fail when a timed stage regresses.

Environment knobs (also exposed as CLI flags in ``python -m repro.bench``):

* ``REPRO_BENCH_SCALE`` — ``smoke`` / ``bench`` / ``paper`` workload scale;
* ``REPRO_BENCH_SEED`` — base seed forwarded to every stage.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments import (
    ExperimentScale,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from ..baselines.tler import TLER
from ..experiments.scenarios import build_corpus, build_scenario
from ..features.cache import EncodingCache, get_default_cache
from ..features.encoder import PairEncoder
from ..text import embeddings as _embeddings
from ..text import hashing as _hashing
from ..text.embeddings import HashedEmbedder
from ..text.tokenizer import Tokenizer, _tokenize_cached

__all__ = ["BENCH_SCHEMA_VERSION", "BenchStage", "STAGES", "select_scale",
           "select_seed", "run_suite", "check_regressions", "find_regressions",
           "list_stages", "summarize_latency_samples"]

BENCH_SCHEMA_VERSION = 1

SCALE_NAMES = ("smoke", "bench", "paper")


def reset_process_caches() -> None:
    """Drop every process-wide memo so a timed run starts cold.

    Used before gate re-timings: a retry in the same process would otherwise
    find the encoding cache and token memos fully warm and mask a real
    regression that the (cold-process) baseline would have caught.
    """
    get_default_cache().clear()
    _tokenize_cached.cache_clear()
    # Clear the inner memo dicts (live instances keep references to them);
    # emptying only the registries would leave those instances warm.
    for memo in Tokenizer._shared_caches.values():
        memo.clear()
    for memo in _embeddings._SHARED_TOKEN_CACHES.values():
        memo.clear()
    for memo in _hashing._SHARED_BUCKET_CACHES.values():
        memo.clear()
    TLER._sim_cache.clear()


def select_scale(name: Optional[str] = None) -> Tuple[str, ExperimentScale]:
    """Resolve a scale name (default: ``$REPRO_BENCH_SCALE`` or ``bench``)."""
    # An empty env var (e.g. an unset CI template variable) means "default".
    mode = (name or os.environ.get("REPRO_BENCH_SCALE") or "bench").lower()
    if mode == "paper":
        return mode, ExperimentScale.paper()
    if mode == "smoke":
        return mode, ExperimentScale.smoke()
    if mode == "bench":
        # Small enough for CI, large enough to be meaningful.
        return mode, ExperimentScale(music_entities=50, monitor_entities=70, support_size=40,
                                     test_size=150, adamel_epochs=15, baseline_epochs=8,
                                     embedding_dim=32, hidden_dim=24, attention_dim=48,
                                     classifier_hidden_dim=48, tokens_per_attribute=5)
    raise ValueError(f"unknown benchmark scale {mode!r}; expected one of {SCALE_NAMES}")


def select_seed(seed: Optional[int] = None) -> int:
    """Resolve the bench seed (default: ``$REPRO_BENCH_SEED`` or 0)."""
    if seed is not None:
        return int(seed)
    return int(os.environ.get("REPRO_BENCH_SEED") or "0")


# --------------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BenchStage:
    """One timed stage of the suite; ``runner(scale, seed)`` returns extras."""

    name: str
    description: str
    runner: Callable[[ExperimentScale, int], Optional[Dict[str, float]]]


def _stage_encoder(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Vectorised vs per-pair reference encoding on a fixed scenario."""
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed).align()
    schema = scenario.aligned_schema()
    pairs = (list(scenario.source.pairs) + list(scenario.target.pairs)
             + list(scenario.test.pairs))
    tokenizer = Tokenizer(crop_size=max(scale.tokens_per_attribute, 4) * 3)
    embedder = HashedEmbedder(dim=scale.embedding_dim, tokenizer=tokenizer)
    encoder = PairEncoder(schema, embedder=embedder, tokenizer=tokenizer,
                          cache=EncodingCache())

    def cold_text_memos() -> None:
        # Drop the per-text/token memos so both cold passes pay the same
        # tokenising and embedding cost and the ratio isolates vectorisation.
        tokenizer.clear_memo()
        embedder.clear_memo()
        _tokenize_cached.cache_clear()

    # Warm the fixed bucket-vector table once, untimed: its one-time Gaussian
    # generation is a model-load cost (like reading pretrained embeddings),
    # not per-pair encoding work, and both paths use the identical table.
    encoder.encode_reference(pairs)

    # Cold regime: every text/token memo empty for each pass.
    cold_text_memos()
    start = time.perf_counter()
    reference = encoder.encode_reference(pairs)
    reference_seconds = time.perf_counter() - start

    cold_text_memos()
    start = time.perf_counter()
    cold = encoder.encode(pairs)
    cold_seconds = time.perf_counter() - start

    # Steady-state regime: text/token memos warm (as across a real experiment
    # run), per-pair encoding cache still empty — the cost of encoding a NEW
    # pair list once the process has seen the vocabulary.
    start = time.perf_counter()
    reference_steady = encoder.encode_reference(pairs)
    reference_steady_seconds = time.perf_counter() - start

    steady_encoder = PairEncoder(schema, embedder=embedder, tokenizer=tokenizer,
                                 cache=EncodingCache())
    start = time.perf_counter()
    steady = steady_encoder.encode(pairs)
    steady_seconds = time.perf_counter() - start

    # Cached regime: the same pairs re-encoded through the warm pair cache.
    start = time.perf_counter()
    warm = encoder.encode(pairs)
    warm_seconds = time.perf_counter() - start

    batches = (reference, cold, reference_steady, steady, warm)
    if not all(np.array_equal(batches[0].features, other.features)
               for other in batches[1:]):
        raise AssertionError("vectorised encoder diverged from the reference path")
    return {
        "num_pairs": float(len(pairs)),
        "reference_seconds": reference_steady_seconds,
        "vectorized_seconds": steady_seconds,
        "cached_seconds": warm_seconds,
        "cold_reference_seconds": reference_seconds,
        "cold_vectorized_seconds": cold_seconds,
        # Headline: the steady-state regime experiments actually run in.
        "speedup": reference_steady_seconds / max(steady_seconds, 1e-9),
        "cold_speedup": reference_seconds / max(cold_seconds, 1e-9),
        "cached_speedup": reference_steady_seconds / max(warm_seconds, 1e-9),
    }


def _stage_figure6_music3k(scale: ExperimentScale, seed: int) -> None:
    run_figure6("music3k", "artist", modes=("overlapping", "disjoint"),
                methods=["tler", "deepmatcher", "cordel-attention", "adamel-base",
                         "adamel-zero", "adamel-few", "adamel-hyb"],
                scale=scale, seed=seed)


def _stage_figure6_music1m(scale: ExperimentScale, seed: int) -> None:
    methods = ["adamel-base", "adamel-zero", "adamel-hyb", "cordel-attention"]
    run_figure6("music1m", "artist", modes=("overlapping",), methods=methods,
                scale=scale, seed=seed)
    run_figure6("music3k", "artist", modes=("overlapping",), methods=methods,
                scale=scale, seed=seed)


def _stage_figure6_monitor(scale: ExperimentScale, seed: int) -> None:
    run_figure6("monitor", "monitor", modes=("overlapping", "disjoint"),
                methods=["tler", "cordel-attention", "adamel-base",
                         "adamel-zero", "adamel-hyb"],
                scale=scale, seed=seed)


def _stage_figure7(scale: ExperimentScale, seed: int) -> None:
    run_figure7("music3k", "artist", adaptation_weights=(0.0, 0.98),
                max_points_per_domain=60, scale=scale, seed=seed)


def _stage_figure8(scale: ExperimentScale, seed: int) -> None:
    run_figure8("music3k", "artist", lambdas=(0.0, 0.9, 0.98, 1.0),
                scale=scale, seed=seed)


def _stage_figure9(scale: ExperimentScale, seed: int) -> None:
    run_figure9(source_counts=(7, 11, 15), scale=scale, seed=seed)


def _stage_figure10(scale: ExperimentScale, seed: int) -> None:
    run_figure10("monitor", "monitor", support_sizes=(1, 20, 60, 120),
                 scale=scale, seed=seed)


def _stage_figure11(scale: ExperimentScale, seed: int) -> None:
    run_figure11(scale=scale, seed=seed)


def _stage_figure12(scale: ExperimentScale, seed: int) -> None:
    run_figure12("monitor", attribute="prod_type", top_k=10, scale=scale, seed=seed)


def _stage_table4(scale: ExperimentScale, seed: int) -> None:
    run_table4(top_k=5, scale=scale, seed=seed)


def _stage_table5(scale: ExperimentScale, seed: int) -> None:
    run_table5(datasets={"music3k-artist": {"dataset": "music3k",
                                            "entity_type": "artist",
                                            "num_top": 4}},
               scale=scale, seed=seed)


def _stage_table6(scale: ExperimentScale, seed: int) -> None:
    run_table6(datasets=(("music3k", "artist"),), scale=scale, seed=seed)


def _stage_table7(scale: ExperimentScale, seed: int) -> None:
    run_table7(benchmarks=("dblp-acm", "itunes-amazon", "dirty-walmart-amazon"),
               scale=scale, seed=seed)


def _stage_serve_online(scale: ExperimentScale, seed: int) -> Dict[str, object]:
    """Online serving on Music-3K: streamed upserts, then concurrent queries.

    Ingest replays a shuffled record stream through ``EntityStore.upsert``
    (sequential — batch parity is defined over one input order), queries
    replay the same records from 4 concurrent workers through the
    deadline-bounded coalescer.  Raw per-request latency samples are returned
    under ``*_latency_samples`` keys; :func:`run_suite` folds them into
    p50/p95/p99 percentiles.  ``batch_parity`` is 1.0 when the streamed
    clusters equal one batch ``LinkagePipeline.run`` over the same order.
    """
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..pipeline import LinkagePipeline
    from ..serve import (LinkageService, ServiceConfig, StoreConfig,
                         replay_queries, replay_upserts)

    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    model = create_variant("adamel-hyb", scale.adamel_config(epochs=min(scale.adamel_epochs, 10)))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)

    records = list(corpus.records)
    np.random.default_rng(seed).shuffle(records)
    store_config = StoreConfig()
    service_config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0)
    with LinkageService(predictor, store_config=store_config,
                        service_config=service_config) as service:
        ingest = replay_upserts(service, records)
        queries = replay_queries(service, records, num_workers=4)
        coalescer = service.coalescer.stats()
        store_stats = service.store.stats()
        online_clusters = service.store.clusters()
    batch = LinkagePipeline(predictor,
                            config=store_config.to_pipeline_config()).run(records)
    return {
        "num_records": float(len(records)),
        "num_entities": store_stats["entities"],
        "pairs_scored_online": store_stats["pairs_scored"],
        "upserts_per_second": ingest.throughput,
        "queries_per_second": queries.throughput,
        "query_workers": float(queries.num_workers),
        "query_errors": float(queries.errors),
        "coalesced_batches": coalescer["batches"],
        "mean_batch_pairs": coalescer["mean_batch_pairs"],
        "deadline_flushes": coalescer["deadline_flushes"],
        "size_flushes": coalescer["size_flushes"],
        "batch_parity": float(online_clusters == batch.clusters.clusters),
        "upsert_latency_samples": ingest.latencies,
        "query_latency_samples": queries.latencies,
    }


def _stage_serve_degraded(scale: ExperimentScale, seed: int) -> Dict[str, object]:
    """Serving availability under a total scoring outage (Music-3K).

    Ingests the corpus on a healthy service, records every probe's healthy
    candidate-entity set, then arms a ``serve.score`` raise fault that fails
    *every* scoring call and replays all queries through the outage.  The
    circuit breaker trips after ``breaker_failure_threshold`` consecutive
    failures and queries fall back to the index-only degraded ranking, so
    the gate demands:

    * ``availability`` ≥ 0.99 (enforced by :func:`find_regressions`) — the
      fraction of outage queries that returned an answer instead of raising;
    * ``degraded_parity`` exactly 1.0 — zero queries errored, and every
      degraded answer's entities were a subset of the healthy run's
      candidates for the same probe (the degraded path uses the same index
      probes and filters, so it may lose score quality but never invents
      candidates);
    * ``breaker_tripped_parity`` exactly 1.0 — the outage actually opened
      the breaker and :meth:`LinkageService.health` reported the breach
      (``status == "breached"``) while queries kept answering.
    """
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..resilience import faults
    from ..resilience.faults import FaultSpec
    from ..serve import LinkageService, ServiceConfig, StoreConfig, replay_upserts

    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    model = create_variant("adamel-hyb", scale.adamel_config(epochs=min(scale.adamel_epochs, 6)))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)

    records = list(corpus.records)
    np.random.default_rng(seed).shuffle(records)
    service_config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0,
                                   breaker_failure_threshold=3)
    with LinkageService(predictor, store_config=StoreConfig(),
                        service_config=service_config) as service:
        replay_upserts(service, records)
        healthy: Dict[str, set] = {}
        for record in records:
            result = service.query(record, top_k=100)
            healthy[record.record_id] = {match.entity_id
                                         for match in result.matches}
        answered = errored = degraded = 0
        subset_ok = True
        latencies: List[float] = []
        with faults.plan_scope([FaultSpec(site="serve.score", kind="raise",
                                          every=1)]):
            outage_start = time.perf_counter()
            for record in records:
                try:
                    result = service.query(record, top_k=100)
                except Exception:
                    errored += 1
                    continue
                answered += 1
                latencies.append(result.seconds)
                if result.degraded:
                    degraded += 1
                    entities = {match.entity_id for match in result.matches}
                    if not entities <= healthy[record.record_id]:
                        subset_ok = False
            outage_seconds = time.perf_counter() - outage_start
            health = service.health()
        breaker = service.breaker.stats()

    total = len(records)
    breached = (float(breaker["opens"]) >= 1.0
                and health["status"] == "breached")
    return {
        "num_records": float(total),
        "availability": answered / max(total, 1),
        "errored_queries": float(errored),
        "degraded_queries": float(degraded),
        "degraded_fraction": degraded / max(answered, 1),
        "degraded_queries_per_second": answered / max(outage_seconds, 1e-9),
        "breaker_opens": float(breaker["opens"]),
        "degraded_parity": float(errored == 0 and subset_ok),
        "breaker_tripped_parity": float(breached),
        "degraded_query_latency_samples": latencies,
    }


def _stage_store_recovery(scale: ExperimentScale, seed: int) -> Dict[str, object]:
    """Durable-store recovery: snapshot + WAL-tail restore vs full replay.

    Streams the smoke corpus through a :class:`repro.storage.Storage` (every
    upsert fsync-WAL-logged) with one compacted snapshot taken at ~75% of the
    stream and WAL pruning disabled, so the same directory supports both
    recovery paths:

    * ``tail_restore_seconds`` — :meth:`Storage.recover` as shipped: load the
      snapshot, replay only the WAL tail past its LSN;
    * ``full_replay_seconds`` — the same directory with the snapshot files
      removed, forcing recovery to replay the entire WAL.

    ``restore_speedup`` (full / tail) is gated by ``--check`` against a
    ≥1.2x floor: the whole point of compaction is that recovery is
    O(snapshot + tail), not O(corpus).  The ``*_parity`` extras pin both
    recovered stores (and a SQLite-backed re-run of the stream) bit-exact
    against the never-crashed store.  Scoring hashes the pair id
    (process-stable FNV) — this stage measures the storage engine, not the
    model.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from ..serve.store import EntityStore, StoreConfig
    from ..storage import Storage, StorageConfig
    from ..text.hashing import stable_hash

    def score_fn(pairs):
        return np.array([(stable_hash(pair.pair_id) % 1000) / 999.0
                         for pair in pairs])

    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    records = list(corpus.records)
    np.random.default_rng(seed).shuffle(records)
    store_config = StoreConfig()
    snapshot_at = max(1, (3 * len(records)) // 4)

    with tempfile.TemporaryDirectory(prefix="bench-store-recovery-") as tmp:
        data_dir = Path(tmp) / "data"
        storage = Storage(data_dir, score_fn=score_fn,
                          store_config=store_config,
                          config=StorageConfig(prune_wal=False))
        started = time.perf_counter()
        for position, record in enumerate(records, start=1):
            storage.upsert(record)
            if position == snapshot_at:
                storage.snapshot()
        ingest_seconds = time.perf_counter() - started
        live_state = storage.store.state_dict()
        live_clusters = storage.store.clusters()
        fsync_samples = storage.fsync_latency_samples()
        wal_stats = storage.stats()
        storage.close()

        # The same log with the snapshot removed: recovery must replay all
        # of it — the pre-compaction recovery cost.
        replay_dir = Path(tmp) / "full-replay"
        shutil.copytree(data_dir, replay_dir)
        for snapshot in replay_dir.glob("snapshot-*.json"):
            snapshot.unlink()

        started = time.perf_counter()
        tail = Storage.recover(data_dir, score_fn=score_fn,
                               config=StorageConfig(prune_wal=False))
        tail_seconds = time.perf_counter() - started
        started = time.perf_counter()
        full = Storage.recover(replay_dir, score_fn=score_fn,
                               config=StorageConfig(prune_wal=False))
        full_seconds = time.perf_counter() - started

        recovery_parity = float(tail.store.state_dict() == live_state
                                and tail.store.clusters() == live_clusters)
        full_replay_parity = float(full.store.state_dict() == live_state)
        tail_report = tail.last_recovery
        tail.close()
        full.close()

    # The SQLite posting-list backend must block (and therefore cluster)
    # exactly like the in-memory one over the same stream.
    sqlite_store = EntityStore(
        score_fn=score_fn,
        config=StoreConfig(**{**store_config.as_dict(), "backend": "sqlite"}))
    for record in records:
        sqlite_store.upsert(record)
    sqlite_backend_parity = float(sqlite_store.clusters() == live_clusters)
    sqlite_store.close()

    return {
        "num_records": float(len(records)),
        "durable_upserts_per_second": len(records) / ingest_seconds,
        "wal_entries": wal_stats["wal_entries"],
        "wal_bytes": wal_stats["wal_bytes"],
        "snapshot_lsn": float(tail_report.snapshot_lsn),
        "tail_replayed_entries": float(tail_report.replayed_entries),
        "tail_restore_seconds": tail_seconds,
        "full_replay_seconds": full_seconds,
        "restore_speedup": full_seconds / max(tail_seconds, 1e-9),
        "recovery_parity": recovery_parity,
        "full_replay_parity": full_replay_parity,
        "sqlite_backend_parity": sqlite_backend_parity,
        "wal_fsync_latency_samples": fsync_samples,
    }


def _stage_train_epoch(scale: ExperimentScale, seed: int) -> Dict[str, object]:
    """Training-engine micro-benchmark: eager vs graph-replay throughput.

    Fits AdaMEL-hyb (the variant with the largest per-step graph: source +
    support forwards plus the KL adaptation term) on the Music-3K scenario
    under three executions of the same numerics:

    * ``legacy``  — eager engine with the pre-fusion *kernel composition*
      (softmax(energies), sigmoid(mlp(x)), composed KL); note it still shares
      the engine-level improvements of the fast-path work (buffered backward
      closures, flat Adam), so ``replay_speedup`` understates the gain over
      the previous commit's engine;
    * ``eager``   — eager engine with the fused kernels;
    * ``replay``  — the graph-replay engine (fused kernels, compiled step).

    Each configuration runs ``rounds`` interleaved fits and keeps its best
    per-step p50, cancelling machine drift.  ``replay_speedup`` is replay vs
    the legacy eager path; ``replay_vs_fused_eager`` isolates what graph
    replay adds on top of kernel fusion.  Deterministic tape counters
    (``replay_*_ops``, ``*_tensors_per_step``) are emitted so ``--check`` can
    flag tape regressions that wall-clock noise would hide, and
    ``train_lockstep`` is 1.0 only if eager and replay produced bit-identical
    loss histories (float64).
    """
    from ..core.variants import create_variant
    from ..nn.tensor import Tensor

    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed).align()
    base = scale.adamel_config(epochs=min(scale.adamel_epochs, 12), profile_steps=True)
    configs = {
        "legacy": base.with_updates(execution="eager", legacy_kernels=True),
        "eager": base.with_updates(execution="eager"),
        "replay": base.with_updates(execution="replay"),
    }
    rounds = 3
    best_p50 = {name: float("inf") for name in configs}
    best_p95 = {name: float("inf") for name in configs}
    best_rate = {name: 0.0 for name in configs}
    tensors_per_step = {name: 0.0 for name in configs}
    replay_samples: List[float] = []
    replay_stats: Optional[Dict[str, int]] = None
    histories: Dict[str, List[float]] = {}
    for _ in range(rounds):
        for name, config in configs.items():
            model = create_variant("adamel-hyb", config)
            created_before = Tensor._created
            history = model.fit(scenario)
            steps = history.step_seconds or [float("nan")]
            tensors_per_step[name] = (Tensor._created - created_before) / max(len(steps), 1)
            p50 = float(np.percentile(steps, 50))
            if p50 < best_p50[name]:
                best_p50[name] = p50
                best_p95[name] = float(np.percentile(steps, 95))
                best_rate[name] = len(steps) / sum(steps)
                if name == "replay":
                    replay_samples = list(steps)
                    replay_stats = model.replay_stats()
            histories[name] = list(history.total_loss)
    extras: Dict[str, object] = {
        "train_steps_per_second": best_rate["replay"],
        "eager_steps_per_second": best_rate["eager"],
        "legacy_steps_per_second": best_rate["legacy"],
        # Ratios of best p50 step times: robust to the occasional slow step a
        # throughput mean would smear into the comparison.
        "replay_speedup": best_p50["legacy"] / max(best_p50["replay"], 1e-9),
        "replay_vs_fused_eager": best_p50["eager"] / max(best_p50["replay"], 1e-9),
        "eager_step_p50_ms": best_p50["eager"] * 1e3,
        "eager_step_p95_ms": best_p95["eager"] * 1e3,
        "legacy_step_p50_ms": best_p50["legacy"] * 1e3,
        "eager_tensors_per_step": tensors_per_step["eager"],
        "replay_tensors_per_step": tensors_per_step["replay"],
        "train_lockstep": float(histories["eager"] == histories["replay"]),
        "train_step_latency_samples": replay_samples,
    }
    if replay_stats is not None:
        extras["replay_forward_ops"] = float(replay_stats["forward_ops"])
        extras["replay_backward_ops"] = float(replay_stats["backward_ops"])
        extras["replay_graph_nodes"] = float(replay_stats["nodes"])
    return extras


def _stage_obs_overhead(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Telemetry overhead: serve and train throughput, enabled vs disabled.

    Runs the same two workloads — an online serve replay (upserts + concurrent
    queries through the coalescer) and a short AdaMEL-hyb fit — with telemetry
    off and with a live registry + collector installed via ``obs.telemetry()``.
    Rounds interleave the two states so machine drift cancels, and each state
    keeps its best throughput.  ``*_overhead_ratio`` is best-disabled over
    best-enabled rate (1.0 = free); ``find_regressions`` fails the gate when a
    ratio exceeds the 5% budget, which keeps "zero-cost when disabled, cheap
    when enabled" an enforced property rather than a design note.
    """
    from .. import obs
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..serve import (LinkageService, ServiceConfig, StoreConfig,
                         replay_queries, replay_upserts)

    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    train_config = scale.adamel_config(epochs=min(scale.adamel_epochs, 6))
    model = create_variant("adamel-hyb", train_config)
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)

    # The ratio measures relative overhead, not capacity: a few hundred
    # records give stable rates without turning this stage into a soak test.
    records = list(corpus.records)
    np.random.default_rng(seed).shuffle(records)
    records = records[:200]

    def serve_rate() -> float:
        service_config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0)
        with LinkageService(predictor, store_config=StoreConfig(),
                            service_config=service_config) as service:
            start = time.perf_counter()
            replay_upserts(service, records)
            replay_queries(service, records, num_workers=4)
            elapsed = time.perf_counter() - start
        return 2 * len(records) / max(elapsed, 1e-9)

    def train_rate() -> float:
        trainer = create_variant("adamel-hyb", train_config)
        start = time.perf_counter()
        history = trainer.fit(scenario)
        elapsed = time.perf_counter() - start
        return len(history.total_loss) / max(elapsed, 1e-9)

    best = {"serve_off": 0.0, "serve_on": 0.0, "train_off": 0.0, "train_on": 0.0}
    for _ in range(3):
        best["serve_off"] = max(best["serve_off"], serve_rate())
        with obs.telemetry():
            best["serve_on"] = max(best["serve_on"], serve_rate())
        best["train_off"] = max(best["train_off"], train_rate())
        with obs.telemetry():
            best["train_on"] = max(best["train_on"], train_rate())
    return {
        "num_records": float(len(records)),
        "serve_ops_per_second": best["serve_on"],
        "serve_baseline_ops_per_second": best["serve_off"],
        "train_epochs_per_second": best["train_on"],
        "train_baseline_epochs_per_second": best["train_off"],
        "serve_overhead_ratio": best["serve_off"] / max(best["serve_on"], 1e-9),
        "train_overhead_ratio": best["train_off"] / max(best["train_on"], 1e-9),
    }


def _walk_spans(roots, name: str):
    """Every span named ``name`` anywhere in the given trace forest."""
    found = []
    stack = list(roots)
    while stack:
        span = stack.pop()
        if span.name == name:
            found.append(span)
        stack.extend(span.children)
    return found


def _stage_obs_distributed(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Distributed telemetry: worker payload capture + merge, cost and shape.

    Runs the same sharded linkage workload (``workers=1, num_shards=4`` — the
    in-process configuration, so worker spans nest sequentially inside the
    driver's ``sharded.score`` span) with telemetry off and on, interleaved
    over several rounds with each state keeping its best wall-clock.
    ``merge_overhead_ratio`` is best-enabled over best-disabled seconds;
    :func:`find_regressions` gates it against a stage-specific 1.20x ceiling
    rather than the generic 5% ``_overhead_ratio`` budget — at smoke scale a
    sharded run lasts tens of milliseconds, so the fixed per-run cost of
    worker capture + payload merge (a millisecond or two, amortised away at
    real corpus sizes) plus shared-box noise would flake a 5% gate, while a
    real regression (say, capturing per pair instead of per shard) lands far
    above 1.20x.

    Shape invariants from the last enabled run (all ``_parity`` extras, so
    the gate demands exactly 1.0):

    * ``worker_span_parity`` — one ``sharded.worker`` span per non-empty
      shard, each carrying a ``shard`` attribute and re-rooted under the
      driver's single ``sharded.score`` span;
    * ``shard_seconds_once_parity`` — ``pipeline_sharded_shard_seconds`` has
      exactly one observation per shard per phase (the workers are the single
      observation site — a driver-side re-observe would double it);
    * ``worker_span_fork_parity`` — the same span accounting holds for a
      forked 4-worker run (trivially 1.0 where fork is unavailable).

    ``worker_span_coverage`` is the summed worker-span wall time over the
    ``sharded.score`` span's wall time.  In-process the workers run back to
    back inside that span, so coverage must sit near 1.0 (the gate allows
    [0.9, 1.1]); a forked run overlaps workers and is covered by the parity
    flag instead.
    """
    from .. import obs
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..pipeline import ShardConfig, ShardedPipeline

    fork_available = ShardedPipeline.fork_available
    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    model = create_variant("adamel-hyb", scale.adamel_config(epochs=min(scale.adamel_epochs, 6)))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)
    records = list(corpus.records)
    pipeline = ShardedPipeline(predictor,
                               shards=ShardConfig(workers=1, num_shards=4))

    # One sharded run at smoke scale lasts tens of milliseconds, well inside
    # the scheduling noise of a shared box.  Noise is one-sided (a run only
    # ever gets slower), so the best over many small interleaved samples
    # estimates each state's floor; each sample still batches two runs so
    # the per-session setup amortises the way a long-lived process would.
    iterations = 2

    def timed_batch() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            pipeline.run(list(records))
        return time.perf_counter() - start

    best = {"off": float("inf"), "on": float("inf")}
    for _ in range(6):
        best["off"] = min(best["off"], timed_batch())
        with obs.telemetry():
            best["on"] = min(best["on"], timed_batch())

    # Shape and coverage come from one dedicated enabled run, so span and
    # observation counts are per-run quantities.
    with obs.telemetry() as session:
        result = pipeline.run(list(records))
    expected = len(result.shard_report.shard_emit_seconds)

    roots = session.collector.roots()
    workers = _walk_spans(roots, "sharded.worker")
    score_spans = _walk_spans(roots, "sharded.score")
    in_process_ok = (
        len(score_spans) == 1
        and len(workers) == expected
        and all(span.attributes.get("shard") is not None for span in workers)
        and all(span in score_spans[0].children for span in workers))
    coverage = (sum(span.seconds for span in workers)
                / max(score_spans[0].seconds, 1e-9)) if score_spans else 0.0
    phase_counts = {entry["labels"].get("phase"): entry.get("count")
                    for entry in session.registry.snapshot()
                    if entry["name"] == "pipeline_sharded_shard_seconds"}
    once_ok = (phase_counts.get("emit") == expected
               and phase_counts.get("score") == expected)

    fork_ok = True
    if fork_available():
        forked_pipeline = ShardedPipeline(predictor, shards=ShardConfig(workers=4,
                                                                        num_shards=4))
        with obs.telemetry() as fork_session:
            forked = forked_pipeline.run(list(records))
        fork_roots = fork_session.collector.roots()
        fork_workers = _walk_spans(fork_roots, "sharded.worker")
        fork_expected = len(forked.shard_report.shard_emit_seconds)
        fork_ok = (len(fork_workers) == fork_expected
                   and all(span.attributes.get("shard") is not None
                           for span in fork_workers))

    return {
        "num_records": float(len(records)),
        "expected_worker_spans": float(expected),
        "fork_available": float(fork_available()),
        "telemetry_seconds": best["on"],
        "baseline_seconds": best["off"],
        "merge_overhead_ratio": best["on"] / max(best["off"], 1e-9),
        "worker_span_coverage": coverage,
        "worker_span_parity": float(in_process_ok),
        "shard_seconds_once_parity": float(once_ok),
        "worker_span_fork_parity": float(fork_ok),
    }


def _stage_pipeline_end_to_end(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Full linkage engine on Music-3K: train, then ingest→block→score→cluster."""
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..pipeline import LinkagePipeline

    corpus = build_corpus("music3k", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music3k", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    model = create_variant("adamel-hyb", scale.adamel_config(epochs=min(scale.adamel_epochs, 10)))
    model.fit(scenario)
    result = LinkagePipeline(BatchedPredictor.from_trainer(model)).run(corpus.records)
    pair_stats = result.candidates.stats
    cluster_stats = result.clusters.stats
    score_stats = result.scored.stats
    return {
        "num_records": float(len(result.records)),
        "num_candidates": pair_stats["num_candidates"],
        "blocking_recall": pair_stats.get("recall", 0.0),
        "pair_reduction_factor": pair_stats["pair_reduction_factor"],
        "scoring_pairs_per_second": score_stats.get("pairs_per_second", 0.0),
        "num_clusters": cluster_stats["num_clusters"],
        "pairwise_f1": cluster_stats.get("pairwise_f1", 0.0),
        "pipeline_seconds": sum(result.stage_seconds.values()),
    }


def _stage_pipeline_sharded_1m(scale: ExperimentScale, seed: int) -> Dict[str, float]:
    """Sharded vs single-process linkage on the Music-1M weak-label corpus.

    Trains one model, then links the same corpus three ways: the
    single-process :class:`~repro.pipeline.LinkagePipeline`, a
    ``ShardedPipeline`` with one worker (the bit-exact configuration), and a
    ``ShardedPipeline`` with 4 workers.  Reports wall-clock for each, the
    4-worker speedup over 1 worker, and two parity flags the ``--check``
    gate enforces as exact invariants:

    * ``sharded_parity`` — 4-worker clusters identical to the batch run;
    * ``sharded_bitwise_parity`` — 1-worker scores bit-equal to batch.

    ``cpu_count`` is recorded alongside: the ≥3× speedup floor in
    :func:`find_regressions` only applies when the machine actually has 4
    cores to run the workers on (a 1-core box measures honest numbers but
    cannot pass a parallelism gate; parity is enforced everywhere).
    """
    from ..core.variants import create_variant
    from ..infer.predictor import BatchedPredictor
    from ..pipeline import LinkagePipeline, ShardConfig, ShardedPipeline

    corpus = build_corpus("music1m", "artist", scale=scale, seed=seed)
    scenario = build_scenario("music1m", "artist", mode="overlapping",
                              scale=scale, seed=seed)
    model = create_variant("adamel-hyb", scale.adamel_config(epochs=min(scale.adamel_epochs, 10)))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)
    records = list(corpus.records)

    start = time.perf_counter()
    batch = LinkagePipeline(predictor).run(list(records))
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    one = ShardedPipeline(predictor,
                          shards=ShardConfig(workers=1, num_shards=1)).run(list(records))
    one_worker_seconds = time.perf_counter() - start

    start = time.perf_counter()
    four = ShardedPipeline(predictor, shards=ShardConfig(workers=4)).run(list(records))
    four_worker_seconds = time.perf_counter() - start

    report = four.shard_report
    return {
        "num_records": float(len(records)),
        "num_candidates": float(len(batch.scored.pairs)),
        "cpu_count": float(os.cpu_count() or 1),
        "batch_seconds": batch_seconds,
        "sharded_1w_seconds": one_worker_seconds,
        "sharded_4w_seconds": four_worker_seconds,
        "speedup_4w": one_worker_seconds / max(four_worker_seconds, 1e-9),
        "sharded_parity": float(four.clusters.clusters == batch.clusters.clusters),
        "sharded_bitwise_parity": float(
            np.array_equal(one.scored.scores, batch.scored.scores)
            and one.clusters.clusters == batch.clusters.clusters),
        "used_processes": float(report.used_processes),
        "hot_buckets_split": float(report.hot_buckets_split),
        "duplicate_scored_pairs": float(report.duplicate_scored_pairs),
        "shard_load_gini_hashed": report.gini_hashed,
        "shard_load_gini_balanced": report.gini_balanced,
    }


STAGES: Tuple[BenchStage, ...] = (
    BenchStage("encoder", "vectorised vs reference pair encoding", _stage_encoder),
    BenchStage("figure6-music3k", "Fig. 6a method comparison (Music-3K)", _stage_figure6_music3k),
    BenchStage("figure6-music1m", "Fig. 6b weak labels (Music-1M)", _stage_figure6_music1m),
    BenchStage("figure6-monitor", "Fig. 6c method comparison (Monitor)", _stage_figure6_monitor),
    BenchStage("figure7", "Fig. 7 attention-space alignment", _stage_figure7),
    BenchStage("figure8", "Fig. 8 PRAUC vs adaptation weight", _stage_figure8),
    BenchStage("figure9", "Fig. 9 incremental sources + runtime", _stage_figure9),
    BenchStage("figure10", "Fig. 10 PRAUC vs support size", _stage_figure10),
    BenchStage("figure11", "Fig. 11 missingness analysis", _stage_figure11),
    BenchStage("figure12", "Fig. 12 token distribution shift", _stage_figure12),
    BenchStage("table4", "Table 4 feature importance", _stage_table4),
    BenchStage("table5", "Table 5 top attributes", _stage_table5),
    BenchStage("table6", "Table 6 contrastive-feature ablation", _stage_table6),
    BenchStage("table7", "Table 7 single-domain benchmarks", _stage_table7),
    BenchStage("train_epoch", "training engine: eager vs graph replay",
               _stage_train_epoch),
    BenchStage("pipeline_end_to_end", "end-to-end linkage engine (Music-3K)",
               _stage_pipeline_end_to_end),
    BenchStage("pipeline_sharded_1m", "sharded linkage engine (Music-1M)",
               _stage_pipeline_sharded_1m),
    BenchStage("serve_online", "online linkage service latency (Music-3K)",
               _stage_serve_online),
    BenchStage("serve_degraded", "serving availability under a scoring outage",
               _stage_serve_degraded),
    BenchStage("store_recovery", "durable store: WAL-tail vs full-replay restore",
               _stage_store_recovery),
    BenchStage("obs_overhead", "telemetry overhead: serve + train, on vs off",
               _stage_obs_overhead),
    BenchStage("obs_distributed", "distributed telemetry: worker capture + merge",
               _stage_obs_distributed),
)

_STAGES_BY_NAME = {stage.name: stage for stage in STAGES}


def list_stages() -> List[Tuple[str, str]]:
    """``(name, description)`` of every registered stage, in run order."""
    return [(stage.name, stage.description) for stage in STAGES]


# --------------------------------------------------------------------------- #
# Suite execution
# --------------------------------------------------------------------------- #
def summarize_latency_samples(extras: Dict[str, object]) -> Dict[str, float]:
    """Fold raw latency samples into per-stage p50/p95/p99 percentiles.

    A stage may return per-request latency *samples* (seconds) under keys
    ending in ``_latency_samples``; the snapshot should record the latency
    distribution, not a raw array, so each such key is replaced by
    ``<prefix>_latency_{p50,p95,p99}_ms`` plus a ``<prefix>_latency_count``.
    All other entries pass through unchanged, so stages without samples (and
    the ``--check`` gate, which only reads ``seconds``) are unaffected.
    """
    from ..obs.stats import percentiles as _percentiles

    summarized: Dict[str, float] = {}
    for key, value in extras.items():
        if not key.endswith("_latency_samples"):
            summarized[key] = value  # type: ignore[assignment]
            continue
        prefix = key[:-len("_samples")]
        samples = list(value)  # type: ignore[arg-type]
        for name, seconds in _percentiles(samples).items():
            summarized[f"{prefix}_{name}_ms"] = float(seconds) * 1000.0
        summarized[f"{prefix}_count"] = float(len(samples))
    return summarized


def run_suite(scale_name: Optional[str] = None, seed: Optional[int] = None,
              stages: Optional[Sequence[str]] = None,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the benchmark suite and return the ``BENCH_core.json`` payload."""
    resolved_name, scale = select_scale(scale_name)
    resolved_seed = select_seed(seed)
    if stages is None:
        selected = list(STAGES)
    else:
        unknown = [name for name in stages if name not in _STAGES_BY_NAME]
        if unknown:
            raise KeyError(f"unknown bench stages {unknown}; "
                           f"available: {[s.name for s in STAGES]}")
        selected = [_STAGES_BY_NAME[name] for name in stages]

    results: Dict[str, Dict[str, float]] = {}
    total = 0.0
    for stage in selected:
        if progress is not None:
            progress(f"[{stage.name}] {stage.description} ...")
        start = time.perf_counter()
        extras = stage.runner(scale, resolved_seed)
        seconds = time.perf_counter() - start
        entry: Dict[str, float] = {"seconds": round(seconds, 4)}
        if extras:
            entry.update({key: round(float(value), 4)
                          for key, value in summarize_latency_samples(extras).items()})
        results[stage.name] = entry
        total += seconds
        if progress is not None:
            progress(f"[{stage.name}] done in {seconds:.2f}s")

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": resolved_name,
        "seed": resolved_seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "stages": results,
        "total_seconds": round(total, 4),
    }


def _machine_ratio(current: Dict, baseline: Dict) -> float:
    """How much slower this machine is than the one that recorded ``baseline``.

    The encoder stage's ``reference_seconds`` times a fixed pure-python/numpy
    workload (the per-pair reference encoder on a deterministic scenario), so
    the ratio of the two recordings estimates relative machine speed.  The
    ratio only ever *relaxes* budgets (clamped to ``[1, 4]``): a faster
    machine must still beat the recorded absolute numbers.
    """
    try:
        cur = float(current["stages"]["encoder"]["reference_seconds"])
        base = float(baseline["stages"]["encoder"]["reference_seconds"])
    except (KeyError, TypeError, ValueError):
        return 1.0
    if cur <= 0 or base <= 0:
        return 1.0
    return min(max(cur / base, 1.0), 4.0)


def find_regressions(current: Dict, baseline: Dict, tolerance: float = 0.25,
                     min_seconds: float = 0.05) -> List[Tuple[Optional[str], str]]:
    """Compare a fresh run against a committed snapshot.

    Returns ``(stage_name, problem)`` tuples; empty means the gate passes.
    ``stage_name`` is ``None`` for problems no re-run can fix (e.g. a scale
    mismatch).  A stage regresses when its wall-clock exceeds the baseline by
    more than ``tolerance`` (relative) plus a small absolute slack, ignoring
    stages whose baseline is below ``min_seconds`` (pure noise).  Budgets are
    scaled by :func:`_machine_ratio` so a snapshot recorded on faster hardware
    does not fail every stage on a slower CI runner.

    Besides wall-clock, extras whose key ends in ``_ops`` or
    ``_tensors_per_step`` are treated as *deterministic* counters (op counts
    of the compiled training tape, tensor allocations per step): they are
    machine-independent, so they get only 10% headroom plus one count — a
    tape regression stays visible even when timing noise would hide it.

    Extras ending in ``_overhead_ratio`` (the ``obs_overhead`` stage) are
    gated against an *absolute* ceiling — telemetry enabled must stay within
    5% of disabled (plus 1% measurement slack) regardless of what the
    baseline machine recorded; both runs of a ratio share one machine, so no
    machine-ratio relaxation applies.  The stage name is returned so the
    ``--check`` retry loop re-times an over-budget ratio before failing.

    Extras ending in ``_parity`` are exact correctness invariants (sharded
    output equals single-process, streamed equals batch): the current run's
    value must be exactly 1.0 — these are deterministic, so no re-run and no
    headroom.  The ``obs_distributed`` stage additionally gates its
    ``worker_span_coverage`` into ``[0.9, 1.1]`` — in-process worker spans
    must account for the driver's ``sharded.score`` wall time within 10%,
    so telemetry that silently drops (or double-merges) worker payloads
    fails even when every parity flag still holds — and gates its
    ``merge_overhead_ratio`` against a 1.20x ceiling of its own instead of
    the generic 5% rule (the smoke-scale sharded run is tens of
    milliseconds, so the fixed capture + merge cost would flake a 5% gate;
    see :func:`_stage_obs_distributed`).
    The ``pipeline_sharded_1m`` stage additionally gates its
    4-worker ``speedup_4w`` against a ≥3× floor, but only when the current
    machine reports at least 4 CPUs (``cpu_count``); parity always applies,
    parallel speedup only where parallelism physically exists.
    The ``store_recovery`` stage additionally gates its ``restore_speedup``
    against a ≥1.2x floor: snapshot + WAL-tail recovery must beat replaying
    the whole log, or compaction has stopped paying for itself.  Both
    timings come from the same process on the same directory tree, so no
    machine-ratio relaxation applies.
    The ``serve_degraded`` stage additionally gates its ``availability``
    against a ≥0.99 floor: during a total scoring outage queries must keep
    answering (degraded, via the index-only fallback) instead of erroring —
    its ``degraded_parity`` / ``breaker_tripped_parity`` flags ride the
    generic ``_parity`` rule above.
    """
    problems: List[Tuple[Optional[str], str]] = []
    if current.get("scale") != baseline.get("scale"):
        problems.append((None,
            f"scale mismatch: current run is {current.get('scale')!r} but the "
            f"baseline was recorded at {baseline.get('scale')!r}"
        ))
        return problems
    ratio = _machine_ratio(current, baseline)
    baseline_stages = baseline.get("stages", {})
    current_stages = current.get("stages", {})
    for name, base_entry in baseline_stages.items():
        base_seconds = float(base_entry.get("seconds", 0.0))
        cur_entry = current_stages.get(name)
        if cur_entry is None:
            if base_seconds >= min_seconds:
                problems.append((None, f"stage {name!r} present in baseline but not in this run"))
            continue
        # Wall-clock budget: only for stages whose baseline is above the
        # noise floor.  The deterministic counter checks below apply
        # regardless — they are immune to timing noise by construction.
        cur_seconds = float(cur_entry.get("seconds", 0.0))
        budget = base_seconds * (1.0 + tolerance) * ratio + 0.1
        if base_seconds >= min_seconds and cur_seconds > budget:
            problems.append((name,
                f"stage {name!r} regressed: {cur_seconds:.2f}s vs baseline "
                f"{base_seconds:.2f}s (budget {budget:.2f}s at +{tolerance:.0%}"
                + (f", machine ratio {ratio:.2f}" if ratio != 1.0 else "") + ")"
            ))
        if name == "obs_distributed":
            coverage = cur_entry.get("worker_span_coverage")
            if coverage is None:
                problems.append((None,
                    "stage 'obs_distributed' is missing 'worker_span_coverage'"))
            elif not 0.9 <= float(coverage) <= 1.1:
                problems.append((name,
                    f"stage 'obs_distributed' worker span coverage is "
                    f"{float(coverage):.3f}; in-process worker spans must "
                    f"account for the sharded.score wall time within 10%"
                ))
            merge_ratio = cur_entry.get("merge_overhead_ratio")
            if merge_ratio is None:
                problems.append((None,
                    "stage 'obs_distributed' is missing 'merge_overhead_ratio'"))
            elif float(merge_ratio) > 1.20:
                problems.append((name,
                    f"stage 'obs_distributed' worker capture + merge overhead "
                    f"is {float(merge_ratio):.3f}x; the ceiling is 1.20x "
                    f"(wider than obs_overhead's because the smoke workload "
                    f"is tens of milliseconds — a real regression such as "
                    f"per-pair capture lands far above it)"
                ))
        if name == "pipeline_sharded_1m":
            speedup = cur_entry.get("speedup_4w")
            cpus = float(cur_entry.get("cpu_count", 1.0))
            if speedup is not None and cpus >= 4 and float(speedup) < 3.0:
                problems.append((name,
                    f"stage {name!r} sharded speedup is {float(speedup):.2f}x "
                    f"at 4 workers on {cpus:.0f} CPUs; the floor is 3.0x"
                ))
        if name == "serve_degraded":
            availability = cur_entry.get("availability")
            if availability is None:
                problems.append((None,
                    "stage 'serve_degraded' is missing 'availability'"))
            elif float(availability) < 0.99:
                problems.append((None,
                    f"stage 'serve_degraded' availability under a scoring "
                    f"outage is {float(availability):.4f}; the floor is 0.99 "
                    f"(degraded answers, not errors — deterministic, no "
                    f"re-run)"
                ))
        if name == "store_recovery":
            speedup = cur_entry.get("restore_speedup")
            if speedup is None:
                problems.append((None,
                    "stage 'store_recovery' is missing 'restore_speedup'"))
            elif float(speedup) < 1.2:
                problems.append((name,
                    f"stage 'store_recovery' snapshot + WAL-tail restore is "
                    f"only {float(speedup):.2f}x faster than full WAL replay; "
                    f"the floor is 1.2x (compaction must keep recovery "
                    f"O(snapshot + tail))"
                ))
        for key, base_value in base_entry.items():
            if key.endswith("_parity"):
                cur_value = cur_entry.get(key)
                if cur_value is None:
                    problems.append((None,
                        f"stage {name!r} parity flag {key!r} present in "
                        f"baseline but missing from this run"))
                elif float(cur_value) != 1.0:
                    problems.append((None,
                        f"stage {name!r} parity flag {key!r} is "
                        f"{float(cur_value)}; outputs must be identical "
                        f"(deterministic, no re-run)"))
                continue
            if key.endswith("_overhead_ratio"):
                if name == "obs_distributed" and key == "merge_overhead_ratio":
                    continue  # gated above with its own (wider) ceiling
                cur_value = cur_entry.get(key)
                if cur_value is None:
                    problems.append((None,
                        f"stage {name!r} ratio {key!r} present in baseline but "
                        f"missing from this run"))
                elif float(cur_value) > 1.05 + 0.01:
                    problems.append((name,
                        f"stage {name!r} telemetry overhead {key!r} is "
                        f"{float(cur_value):.3f}x; enabled must stay within 5% "
                        f"of disabled (limit 1.06x incl. slack)"
                    ))
                continue
            if not (key.endswith("_ops") or key.endswith("_tensors_per_step")):
                continue
            cur_value = cur_entry.get(key)
            if cur_value is None:
                problems.append((None,
                    f"stage {name!r} counter {key!r} present in baseline but "
                    f"missing from this run"))
                continue
            counter_budget = float(base_value) * 1.10 + 1.0
            if float(cur_value) > counter_budget:
                problems.append((None,
                    f"stage {name!r} counter {key!r} regressed: "
                    f"{float(cur_value):.1f} vs baseline {float(base_value):.1f} "
                    f"(budget {counter_budget:.1f}; deterministic, no re-run)"
                ))
    return problems


def check_regressions(current: Dict, baseline: Dict, tolerance: float = 0.25,
                      min_seconds: float = 0.05) -> List[str]:
    """Human-readable variant of :func:`find_regressions`."""
    return [message for _, message in
            find_regressions(current, baseline, tolerance, min_seconds)]
