"""Finite-difference gradient checking utilities.

These are used by the test suite to validate the autograd engine and the
AdaMEL loss implementations against numerical gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradient"]


def numerical_gradient(func: Callable[[], Tensor], tensor: Tensor,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Estimate d func / d tensor with central finite differences.

    ``func`` must be a zero-argument callable returning a scalar
    :class:`Tensor` and must read ``tensor.data`` on every call.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(func().data)
        flat[i] = original - epsilon
        minus = float(func().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradient(func: Callable[[], Tensor], tensors: Sequence[Tensor],
                   epsilon: float = 1e-6, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare analytic and numerical gradients for every tensor in ``tensors``.

    Returns ``True`` when all gradients agree within tolerance; raises
    ``AssertionError`` with a diagnostic message otherwise.
    """
    for tensor in tensors:
        tensor.zero_grad()
    loss = func()
    loss.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numerical = numerical_gradient(func, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numerical, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numerical)))
            raise AssertionError(
                f"gradient mismatch for tensor #{index}: max abs error {max_err:.3e}"
            )
    return True
