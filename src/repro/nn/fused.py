"""Fused kernels for the autograd hot paths profiled in the AdaMEL trainer.

Each kernel collapses a chain of eager ops into a *single* graph node with an
analytic backward — fewer python closures and ``Tensor`` allocations per step
in eager mode, and a shorter forward program when captured on a
:class:`~repro.nn.graph.Tape`.  All four are validated against
finite-difference gradients in ``tests/nn/test_fused.py``:

* :func:`fused_linear_sigmoid` — ``sigmoid(x @ W.T + b)`` (the classifier
  head Θ's output layer, Eq. 7);
* :func:`fused_attention_softmax` — ``softmax_j(a^T tanh(W x_j))`` (the whole
  attention embedding function ``f``, Eq. 5/6);
* :func:`fused_softmax_cross_entropy` — mean NLL from logits and integer
  class labels (the deep baselines' heads);
* :func:`fused_kl_divergence` — ``KL(p ‖ q)`` with the clip-to-``[eps, 1]``
  semantics of the eager implementation (the ``L_target`` adaptation loss,
  Eq. 10).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .tensor import Tensor, _Capture, _unbroadcast, as_tensor, is_grad_enabled

__all__ = ["fused_linear_sigmoid", "fused_attention_softmax",
           "fused_softmax_cross_entropy", "fused_kl_divergence"]

_EPS = 1e-9


def _node(data: np.ndarray, parents: Tuple[Tensor, ...],
          backward: Callable[[np.ndarray], None],
          forward: Optional[Callable[[], None]] = None) -> Tensor:
    """Create a single fused graph node (mirrors ``Tensor._make_child``)."""
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = parents
        out._backward = backward
    tape = _Capture.tape
    if tape is not None:
        out._forward = forward
        tape.nodes.append(out)
    return out


def fused_linear_sigmoid(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``sigmoid(x @ weight.T + bias)`` as one op.

    ``x`` may have arbitrary leading dimensions over a trailing feature axis;
    ``weight`` is ``(out_features, in_features)`` and ``bias``
    ``(out_features,)``.
    """
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias_t = as_tensor(bias) if bias is not None else None

    z = x.data @ weight.data.T
    if bias_t is not None:
        z = z + bias_t.data
    y = 1.0 / (1.0 + np.exp(-z))
    scratch: dict = {}

    def backward(grad: np.ndarray) -> None:
        # Scratch buffers: allocated once, reused on every graph replay (an
        # eager closure only runs once).  Same ufunc sequence as the
        # unbuffered expressions — values stay bit-identical.
        if not scratch:
            # np.empty (not empty_like): these buffers are reshaped below, and
            # a reshape of a non-C-contiguous buffer would silently return a
            # copy — matmul would fill the copy and the buffer would stay
            # uninitialised.  C-contiguous allocation keeps reshape a view.
            scratch["s"] = np.empty(y.shape, dtype=y.dtype)
            scratch["one_minus"] = np.empty(y.shape, dtype=y.dtype)
            scratch["gx"] = np.empty(x.data.shape, dtype=x.data.dtype)
            scratch["gw"] = np.empty(weight.data.shape, dtype=weight.data.dtype)
            if bias_t is not None:
                scratch["gb"] = np.empty(bias_t.data.shape, dtype=bias_t.data.dtype)
        # d loss / d z through the sigmoid, then the standard affine grads.
        s = scratch["s"]
        np.multiply(grad, y, out=s)
        np.subtract(1.0, y, out=scratch["one_minus"])
        np.multiply(s, scratch["one_minus"], out=s)
        s2 = s.reshape(-1, s.shape[-1])
        x2 = x.data.reshape(-1, x.data.shape[-1])
        gx = scratch["gx"]
        np.matmul(s, weight.data, out=gx.reshape(s.shape[:-1] + (weight.data.shape[1],)))
        x._accumulate(gx)
        weight._accumulate(np.matmul(s2.T, x2, out=scratch["gw"]))
        if bias_t is not None:
            bias_t._accumulate(np.sum(s2, axis=0, out=scratch["gb"]))

    def forward() -> None:
        np.matmul(x.data, weight.data.T, out=y)
        if bias_t is not None:
            np.add(y, bias_t.data, out=y)
        np.negative(y, out=y)
        np.exp(y, out=y)
        np.add(y, 1.0, out=y)
        np.divide(1.0, y, out=y)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)
    return _node(y, parents, backward, forward)


def fused_attention_softmax(x: Tensor, W: Tensor, a: Tensor) -> Tensor:
    """``softmax_j(a^T tanh(W x_j))`` over the trailing-but-one axis.

    ``x`` is ``(..., F, H)``; the result is ``(..., F)`` with rows summing to
    one.  Equivalent to ``F.softmax(AdditiveAttention.energies(x), axis=-1)``
    collapsed into one node: the projection runs as a single GEMM over the
    flattened leading axes, and the softmax jacobian is applied analytically.
    """
    x = as_tensor(x)
    W = as_tensor(W)
    a = as_tensor(a)
    if x.ndim < 2:
        raise ValueError("fused_attention_softmax expects input of shape (..., F, H)")
    lead = x.data.shape[:-1]
    hidden = x.data.shape[-1]

    # Record-time forward; the same buffers are refreshed in place on replay.
    t = np.tanh(x.data.reshape(-1, hidden) @ W.data.T)     # (M, H')
    e = (t @ a.data).reshape(lead)                         # (..., F)
    m = e.max(axis=-1, keepdims=True)
    ex = np.exp(e - m)
    s = ex.sum(axis=-1, keepdims=True)
    y = ex / s

    scratch: dict = {}

    def backward(grad: np.ndarray) -> None:
        if not scratch:
            # C-contiguous allocations: gy/gx are reshaped below, and reshape
            # must stay a view (see fused_linear_sigmoid).
            scratch["gy"] = np.empty(y.shape, dtype=y.dtype)
            scratch["dot"] = np.empty(lead[:-1] + (1,), dtype=y.dtype)
            scratch["ga"] = np.empty(a.data.shape, dtype=a.data.dtype)
            scratch["gz"] = np.empty(t.shape, dtype=t.dtype)
            scratch["tt"] = np.empty(t.shape, dtype=t.dtype)
            scratch["gw"] = np.empty(W.data.shape, dtype=W.data.dtype)
            scratch["gx"] = np.empty(x.data.shape, dtype=x.data.dtype)
        gy, dot = scratch["gy"], scratch["dot"]
        # Softmax jacobian: g_e = y * (g - <g, y>).
        np.multiply(grad, y, out=gy)
        np.sum(gy, axis=-1, keepdims=True, out=dot)
        np.subtract(grad, dot, out=gy)
        np.multiply(y, gy, out=gy)
        ge = gy.reshape(-1)                                # (M,)
        x2 = x.data.reshape(-1, hidden)
        a._accumulate(np.matmul(t.T, ge, out=scratch["ga"]))
        gz, tt = scratch["gz"], scratch["tt"]
        np.multiply(ge[:, None], a.data, out=gz)
        np.power(t, 2, out=tt)
        np.subtract(1.0, tt, out=tt)
        np.multiply(gz, tt, out=gz)                        # (M, H')
        W._accumulate(np.matmul(gz.T, x2, out=scratch["gw"]))
        gx = scratch["gx"]
        np.matmul(gz, W.data, out=gx.reshape(-1, hidden))
        x._accumulate(gx)

    def forward() -> None:
        np.matmul(x.data.reshape(-1, hidden), W.data.T, out=t)
        np.tanh(t, out=t)
        np.matmul(t, a.data, out=e.reshape(-1))
        np.amax(e, axis=-1, keepdims=True, out=m)
        np.subtract(e, m, out=ex)
        np.exp(ex, out=ex)
        np.sum(ex, axis=-1, keepdims=True, out=s)
        np.divide(ex, s, out=y)

    return _node(y, (x, W, a), backward, forward)


def fused_softmax_cross_entropy(logits: Tensor, target_indices: np.ndarray) -> Tensor:
    """Mean multi-class cross-entropy from ``(N, C)`` logits, as one op.

    ``target_indices`` is a plain integer array; it is re-read (and
    re-converted) on every call, so callers that capture this op may refresh
    the array in place between replays regardless of its integer dtype.
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ValueError("fused_softmax_cross_entropy expects 2-D logits (batch, classes)")
    targets = np.asarray(target_indices, dtype=np.int64)
    if targets.shape != (logits.shape[0],):
        raise ValueError("target_indices must have shape (batch,)")
    rows = np.arange(targets.shape[0])

    def current_targets() -> np.ndarray:
        # Read through the caller's array on every call: asarray would copy a
        # non-int64 input at record time, silently freezing the labels for
        # replays.
        return np.asarray(target_indices, dtype=np.int64)

    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    denom = ex.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(denom)
    loss = np.asarray(-(log_probs[rows, targets].mean()))

    def backward(grad: np.ndarray) -> None:
        g = ex / denom                                     # softmax
        g[rows, current_targets()] -= 1.0
        g *= np.asarray(grad) / float(targets.shape[0])
        logits._accumulate(g)

    def forward() -> None:
        np.subtract(logits.data, logits.data.max(axis=1, keepdims=True), out=shifted)
        np.exp(shifted, out=ex)
        np.sum(ex, axis=1, keepdims=True, out=denom)
        np.subtract(shifted, np.log(denom), out=log_probs)
        loss[...] = -(log_probs[rows, current_targets()].mean())

    return _node(loss, (logits,), backward, forward)


def fused_kl_divergence(p: Tensor, q: Tensor, axis: int = -1,
                        eps: float = _EPS) -> Tensor:
    """``KL(p ‖ q)`` summed over ``axis``, averaged over the rest, as one op.

    Matches the eager composition in :func:`repro.nn.losses.kl_divergence`
    including its clip-to-``[eps, 1]`` guards: the gradient is masked where an
    operand was clipped, exactly as the eager ``clip`` backward would.  Both
    operands may broadcast (the ``L_target`` use has ``p`` of shape ``(F,)``
    against ``q`` of shape ``(N, F)``); gradients are summed back to each
    operand's shape.
    """
    p = as_tensor(p)
    q = as_tensor(q)

    ps = np.clip(p.data, eps, 1.0)
    qs = np.clip(q.data, eps, 1.0)
    log_ps = np.log(ps)
    log_qs = np.log(qs)
    log_ratio = log_ps - log_qs
    prod = ps * log_ratio
    div = prod.sum(axis=axis)
    count = max(int(np.asarray(div).size), 1)
    loss = np.asarray(np.asarray(div).mean())

    scratch: dict = {}

    def backward(grad: np.ndarray) -> None:
        scale = np.asarray(grad) / float(count)
        if q.requires_grad:
            if "gq" not in scratch:
                scratch["gq"] = np.empty(prod.shape, dtype=q.data.dtype)
                scratch["mq"] = np.empty(q.data.shape, dtype=bool)
            gq, mq = scratch["gq"], scratch["mq"]
            # -(ps/qs) masked where q was clipped, scaled by the mean factor.
            np.divide(ps, qs, out=gq)
            np.negative(gq, out=gq)
            np.greater_equal(q.data, eps, out=mq)
            mq &= q.data <= 1.0
            gq *= mq
            gq *= scale
            q._accumulate(_unbroadcast(gq, q.data.shape))
        if p.requires_grad:
            mask_p = (p.data >= eps) & (p.data <= 1.0)
            gp = np.where(mask_p, log_ratio + 1.0, 0.0) * scale
            p._accumulate(_unbroadcast(np.broadcast_to(gp, prod.shape).astype(p.data.dtype),
                                       p.data.shape))

    def forward() -> None:
        np.clip(p.data, eps, 1.0, out=ps)
        np.clip(q.data, eps, 1.0, out=qs)
        np.log(ps, out=log_ps)
        np.log(qs, out=log_qs)
        np.subtract(log_ps, log_qs, out=log_ratio)
        np.multiply(ps, log_ratio, out=prod)
        loss[...] = prod.sum(axis=axis).mean()

    return _node(loss, (p, q), backward, forward)
