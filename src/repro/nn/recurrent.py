"""Recurrent layers used by the token-sequence baselines.

DeepMatcher's hybrid variant summarises the word tokens of each attribute with
an attention-weighted bidirectional RNN; EntityMatcher uses bi-GRU encoders.
These layers provide the minimal RNN/GRU machinery those baselines need on top
of the :mod:`repro.nn` autograd engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .layers import Linear
from .module import Module
from .tensor import Tensor, as_tensor, stack

__all__ = ["RNNCell", "GRUCell", "GRU"]


class RNNCell(Module):
    """Elman RNN cell: ``h' = tanh(W_ih x + W_hh h + b)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = Linear(input_size, hidden_size, rng=rng)
        self.hidden_proj = Linear(hidden_size, hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        return (self.input_proj(x) + self.hidden_proj(hidden)).tanh()


class GRUCell(Module):
    """Gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_gate = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.update_gate = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        x = as_tensor(x)
        hidden = as_tensor(hidden)
        combined = F.concatenate([x, hidden], axis=-1)
        reset = F.sigmoid(self.reset_gate(combined))
        update = F.sigmoid(self.update_gate(combined))
        candidate_input = F.concatenate([x, reset * hidden], axis=-1)
        candidate = F.tanh(self.candidate(candidate_input))
        return update * hidden + (1.0 - update) * candidate


class GRU(Module):
    """Single-layer (optionally bidirectional) GRU over a padded batch.

    Input shape ``(batch, length, input_size)``; returns the per-step hidden
    states ``(batch, length, hidden_size * num_directions)`` and the final
    hidden state ``(batch, hidden_size * num_directions)``.
    """

    def __init__(self, input_size: int, hidden_size: int, bidirectional: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.bidirectional = bidirectional
        self.forward_cell = GRUCell(input_size, hidden_size, rng=rng)
        if bidirectional:
            self.backward_cell = GRUCell(input_size, hidden_size, rng=rng)

    def _run_direction(self, cell: GRUCell, sequence: Tensor, reverse: bool) -> Tuple[Tensor, Tensor]:
        batch, length, _ = sequence.shape
        input_size = cell.input_size
        # ``Linear([x, h])`` decomposes into ``x @ Wx^T + h @ Wh^T + b``, so
        # the input-side projections of all three gates can be hoisted out of
        # the time loop as one big GEMM each.  Only the (much smaller)
        # hidden-side matmuls and the gate nonlinearities remain per token —
        # and the two per-token ``concatenate`` ops disappear entirely.
        flat = sequence.reshape(batch * length, input_size)
        gates = (cell.reset_gate, cell.update_gate, cell.candidate)
        x_parts = []
        hidden_weights = []
        for gate in gates:
            x_proj = flat @ gate.weight[:, :input_size].T + gate.bias
            x_parts.append(x_proj.reshape(batch, length, self.hidden_size))
            hidden_weights.append(gate.weight[:, input_size:].T)
        x_reset, x_update, x_candidate = x_parts
        w_reset, w_update, w_candidate = hidden_weights

        hidden = Tensor(np.zeros((batch, self.hidden_size)))
        steps: List[Tensor] = []
        time_indices = range(length - 1, -1, -1) if reverse else range(length)
        for t in time_indices:
            reset = F.sigmoid(x_reset[:, t, :] + hidden @ w_reset)
            update = F.sigmoid(x_update[:, t, :] + hidden @ w_update)
            candidate = F.tanh(x_candidate[:, t, :] + (reset * hidden) @ w_candidate)
            hidden = update * hidden + (1.0 - update) * candidate
            steps.append(hidden)
        if reverse:
            steps = list(reversed(steps))
        return stack(steps, axis=1), hidden

    def forward(self, sequence: Tensor) -> Tuple[Tensor, Tensor]:
        sequence = as_tensor(sequence)
        if sequence.ndim != 3:
            raise ValueError("GRU expects input of shape (batch, length, input_size)")
        outputs_fw, final_fw = self._run_direction(self.forward_cell, sequence, reverse=False)
        if not self.bidirectional:
            return outputs_fw, final_fw
        outputs_bw, final_bw = self._run_direction(self.backward_cell, sequence, reverse=True)
        outputs = F.concatenate([outputs_fw, outputs_bw], axis=-1)
        final = F.concatenate([final_fw, final_bw], axis=-1)
        return outputs, final
