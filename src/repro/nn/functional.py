"""Stateless tensor functions built from :class:`repro.nn.tensor.Tensor` ops.

These mirror ``torch.nn.functional`` for the subset of operations used by the
AdaMEL model (Equations 5-7 of the paper) and the deep baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, concatenate, recomputed_leaf, stack

__all__ = [
    "relu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "dropout",
    "concatenate",
    "stack",
    "normalize",
]

_EPS = 1e-12


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit applied elementwise."""
    return as_tensor(x).relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent applied elementwise."""
    return as_tensor(x).tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid applied elementwise."""
    return as_tensor(x).sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The paper's attention embedding function (Eq. 5) normalises feature energy
    scores with a softmax so that scores are comparable across features and
    sum to one.
    """
    x = as_tensor(x)
    # The detached max-shift is a data-dependent constant: ``recomputed_leaf``
    # re-evaluates it per graph replay instead of freezing it at record time.
    shifted = x - recomputed_leaf(lambda: x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Logarithm of the softmax, computed stably."""
    x = as_tensor(x)
    shifted = x - recomputed_leaf(lambda: x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    shape = x.shape
    dtype = x.data.dtype
    # A recomputed leaf draws a fresh mask per graph replay, consuming the
    # generator exactly as an eager step of the same shape would.  The mask
    # follows the input dtype so float32-policy training stays float32.
    mask = recomputed_leaf(
        lambda: (rng.random(shape) >= p).astype(dtype) / (1.0 - p))
    return x * mask


def normalize(x: Tensor, axis: int = -1, eps: float = _EPS) -> Tensor:
    """L2-normalise ``x`` along ``axis``."""
    x = as_tensor(x)
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm
