"""Attention mechanisms.

``AdditiveAttention`` implements the single-layer attention network used by
AdaMEL's attention embedding function ``f`` (Eq. 5): an energy score
``e_j = a^T tanh(W x_j)`` per feature, normalised with a softmax across the
``F`` features.  ``ScaledDotProductAttention`` and ``SelfAttentionEncoder``
back the token-level baselines (DeepMatcher's attentive summarisation, Ditto's
transformer-lite encoder).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .fused import fused_attention_softmax
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["AdditiveAttention", "ScaledDotProductAttention", "SelfAttentionEncoder"]


class AdditiveAttention(Module):
    """Shared additive attention over a set of feature vectors.

    Given input of shape ``(batch, F, H)`` (one ``H``-dimensional latent
    vector per relational feature), produces attention scores of shape
    ``(batch, F)`` that sum to one across the ``F`` axis.  ``W`` and ``a`` are
    shared across all features, exactly as in Eq. (5)/(6) of the paper.
    """

    def __init__(self, in_features: int, attention_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or attention_dim <= 0:
            raise ValueError("attention dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.attention_dim = attention_dim
        # W: (H', H) shared linear transformation; a: (H',) attention vector.
        self.W = Parameter(init.xavier_uniform((attention_dim, in_features), rng), name="W")
        self.a = Parameter(init.xavier_uniform((attention_dim,), rng), name="a")

    def energies(self, x: Tensor) -> Tensor:
        """Return unnormalised energy scores ``e_j = a^T tanh(W x_j)``.

        Accepts ``(batch, F, H)`` or ``(F, H)`` inputs and returns
        ``(batch, F)`` or ``(F,)`` respectively.
        """
        x = as_tensor(x)
        if x.ndim > 2:
            # Flatten the leading axes so the projection is one GEMM instead
            # of a batched matmul whose backward materialises a per-batch
            # (H', H) gradient block before summing it down to W's shape.
            lead = x.shape[:-1]
            projected = (x.reshape(-1, x.shape[-1]) @ self.W.T).tanh()
            return (projected @ self.a).reshape(lead)
        projected = (x @ self.W.T).tanh()
        return projected @ self.a

    def forward(self, x: Tensor) -> Tensor:
        """Return softmax-normalised attention scores over the feature axis.

        Runs as one fused graph node (projection GEMM + tanh + energy dot +
        softmax with an analytic jacobian) — the eager composition survives as
        :meth:`energies` for callers that need unnormalised scores.
        """
        return fused_attention_softmax(as_tensor(x), self.W, self.a)


class ScaledDotProductAttention(Module):
    """Scaled dot-product attention ``softmax(QK^T / sqrt(d)) V``."""

    def __init__(self) -> None:
        super().__init__()

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: Optional[np.ndarray] = None) -> Tuple[Tensor, Tensor]:
        """Return ``(context, weights)``.

        Shapes: ``query (..., Lq, d)``, ``key (..., Lk, d)``,
        ``value (..., Lk, dv)``; ``mask`` broadcasts to ``(..., Lq, Lk)`` with
        zeros marking padded positions.
        """
        query = as_tensor(query)
        key = as_tensor(key)
        value = as_tensor(value)
        d = query.shape[-1]
        scores = (query @ key.transpose(*range(key.ndim - 2), key.ndim - 1, key.ndim - 2)) / float(np.sqrt(d))
        if mask is not None:
            penalty = np.where(np.asarray(mask) > 0, 0.0, -1e9)
            scores = scores + Tensor(penalty)
        weights = F.softmax(scores, axis=-1)
        return weights @ value, weights


class SelfAttentionEncoder(Module):
    """A single-block self-attention encoder ("transformer-lite").

    Serves as the offline stand-in for the pretrained language models used by
    the Ditto baseline: token embeddings are contextualised with one
    self-attention block followed by a position-wise feed-forward layer.
    """

    def __init__(self, model_dim: int, feedforward_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        feedforward_dim = feedforward_dim or 2 * model_dim
        self.model_dim = model_dim
        self.query_proj = Linear(model_dim, model_dim, rng=rng)
        self.key_proj = Linear(model_dim, model_dim, rng=rng)
        self.value_proj = Linear(model_dim, model_dim, rng=rng)
        self.attention = ScaledDotProductAttention()
        self.ff_in = Linear(model_dim, feedforward_dim, rng=rng)
        self.ff_out = Linear(feedforward_dim, model_dim, rng=rng)

    def forward(self, tokens: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Contextualise a ``(batch, L, D)`` token tensor; returns same shape."""
        tokens = as_tensor(tokens)
        q = self.query_proj(tokens)
        k = self.key_proj(tokens)
        v = self.value_proj(tokens)
        attn_mask = None
        if mask is not None:
            mask = np.asarray(mask)
            attn_mask = mask[..., None, :]  # broadcast over query positions
        context, _ = self.attention(q, k, v, mask=attn_mask)
        hidden = context + tokens  # residual connection
        transformed = self.ff_out(F.relu(self.ff_in(hidden)))
        return transformed + hidden
