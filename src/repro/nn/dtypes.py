"""Floating-point compute policy for the numpy autograd substrate.

The engine defaults to ``float64`` everywhere, which keeps gradient checks
tight and makes the graph-replay executor bit-exact with the eager engine.
Training can opt into ``float32`` compute — roughly half the memory bandwidth
per step on CPU — by installing a :class:`DtypePolicy` for the duration of a
fit (``AdaMELConfig(dtype="float32")`` threads this through the trainer).

The policy governs the dtype of

* new :class:`~repro.nn.tensor.Tensor` payloads built from python lists,
  scalars or integer arrays (existing ``float32``/``float64`` arrays keep
  their dtype so a float32 network keeps computing in float32 even after the
  policy context has exited, e.g. at inference time);
* weight initialisation in :mod:`repro.nn.init`;
* optimiser state in :class:`repro.nn.optim.Adam` (allocated ``zeros_like``
  the parameters, so it follows the parameters' dtype automatically).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

__all__ = ["DtypePolicy", "get_default_dtype", "set_default_dtype", "using_dtype",
           "resolve_dtype"]

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

DtypeLike = Union[str, type, np.dtype]


def resolve_dtype(dtype: DtypeLike) -> np.dtype:
    """Normalise a dtype spec to ``np.float32``/``np.float64`` or raise."""
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(
            f"compute dtype must be float32 or float64, got {resolved!r}"
        )
    return resolved


class DtypePolicy:
    """The process-wide compute dtype used for new tensors and weights."""

    def __init__(self, compute_dtype: DtypeLike = np.float64) -> None:
        self.compute_dtype = resolve_dtype(compute_dtype)

    def __repr__(self) -> str:
        return f"DtypePolicy({self.compute_dtype.name})"


_ACTIVE = DtypePolicy(np.float64)


def get_default_dtype() -> np.dtype:
    """Return the dtype new float tensors are created with."""
    return _ACTIVE.compute_dtype


def set_default_dtype(dtype: DtypeLike) -> None:
    """Install ``dtype`` as the process-wide compute dtype."""
    _ACTIVE.compute_dtype = resolve_dtype(dtype)


@contextmanager
def using_dtype(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the compute dtype (used by the trainer)."""
    previous = _ACTIVE.compute_dtype
    _ACTIVE.compute_dtype = resolve_dtype(dtype)
    try:
        yield _ACTIVE.compute_dtype
    finally:
        _ACTIVE.compute_dtype = previous
