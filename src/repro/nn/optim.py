"""Gradient-based optimisers (SGD with momentum, Adam).

The paper trains AdaMEL with Adam (Kingma & Ba, 2014), learning rate 1e-4.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser holding a list of parameters to update."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser with bias-corrected first and second moment estimates."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Scratch buffers so step() allocates nothing on the hot path.
        self._m_hat = [np.zeros_like(p.data) for p in self.parameters]
        self._v_hat = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v, m_hat, v_hat in zip(self.parameters, self._m, self._v,
                                             self._m_hat, self._v_hat):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            np.divide(m, bias1, out=m_hat)
            np.divide(v, bias2, out=v_hat)
            np.sqrt(v_hat, out=v_hat)
            v_hat += self.eps
            np.multiply(m_hat, self.lr, out=m_hat)
            np.divide(m_hat, v_hat, out=m_hat)
            param.data -= m_hat


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which is useful for training diagnostics.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
