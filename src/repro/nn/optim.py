"""Gradient-based optimisers (SGD with momentum, Adam).

The paper trains AdaMEL with Adam (Kingma & Ba, 2014), learning rate 1e-4.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimiser holding a list of parameters to update."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # In place: compiled-graph replays hold views of this buffer.
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser with bias-corrected first and second moment estimates.

    Parameters
    ----------
    flatten:
        Pack every parameter (and its gradient) into one contiguous buffer
        so a step is ~10 ufunc calls total instead of ~10 per parameter —
        a large constant saving when parameters are small and numerous, as
        in the AdaMEL trainer's hot loop.  ``param.data`` is rebound to a
        view of the flat buffer, so enable this *before* capturing replay
        graphs, and note that (unlike the default mode) parameters whose
        gradient is ``None`` are treated as having a zero gradient rather
        than being skipped.  Element-wise results are bit-identical to the
        unflattened mode.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, flatten: bool = False) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._flat_data: Optional[np.ndarray] = None
        self._flat_grad: Optional[np.ndarray] = None
        self._grad_views: List[np.ndarray] = []
        if flatten and len({p.data.dtype for p in self.parameters}) == 1:
            dtype = self.parameters[0].data.dtype
            total = sum(p.data.size for p in self.parameters)
            self._flat_data = np.empty(total, dtype=dtype)
            self._flat_grad = np.zeros(total, dtype=dtype)
            offset = 0
            for param in self.parameters:
                size = param.data.size
                segment = self._flat_data[offset:offset + size]
                np.copyto(segment, param.data.ravel())
                param.data = segment.reshape(param.data.shape)
                self._grad_views.append(
                    self._flat_grad[offset:offset + size].reshape(param.data.shape))
                offset += size
            shape = (total,)
        else:
            shape = None
        if shape is not None:
            self._m = [np.zeros(shape, dtype=self._flat_data.dtype)]
            self._v = [np.zeros(shape, dtype=self._flat_data.dtype)]
            self._m_hat = [np.zeros(shape, dtype=self._flat_data.dtype)]
            self._v_hat = [np.zeros(shape, dtype=self._flat_data.dtype)]
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]
            # Scratch buffers so step() allocates nothing on the hot path.
            self._m_hat = [np.zeros_like(p.data) for p in self.parameters]
            self._v_hat = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        if self._flat_grad is not None:
            # Zero the flat buffer and (re)bind every parameter's grad to its
            # view, so backward accumulation lands directly in the buffer.
            self._flat_grad.fill(0.0)
            for param, view in zip(self.parameters, self._grad_views):
                param.grad = view
            return
        super().zero_grad()

    def _sync_flat_grads(self) -> None:
        """Copy back gradients that were rebound outside the flat views."""
        for param, view in zip(self.parameters, self._grad_views):
            if param.grad is view:
                continue
            if param.grad is None:
                view.fill(0.0)
            else:
                np.copyto(view, param.grad)
            param.grad = view

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if self._flat_data is not None:
            self._sync_flat_grads()
            updates = [(self._flat_data, self._flat_grad, self._m[0], self._v[0],
                        self._m_hat[0], self._v_hat[0])]
        else:
            updates = [(p.data, p.grad, m, v, m_hat, v_hat)
                       for p, m, v, m_hat, v_hat in zip(self.parameters, self._m,
                                                        self._v, self._m_hat, self._v_hat)
                       if p.grad is not None]
        for data, grad, m, v, m_hat, v_hat in updates:
            if self.weight_decay:
                grad = grad + self.weight_decay * data
            # Scratch via m_hat/v_hat: no temporaries on the hot path.  The
            # ufunc order matches the plain expressions bit for bit.
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=m_hat)
            m += m_hat
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=v_hat)
            v_hat *= grad
            v += v_hat
            np.divide(m, bias1, out=m_hat)
            np.divide(v, bias2, out=v_hat)
            np.sqrt(v_hat, out=v_hat)
            v_hat += self.eps
            np.multiply(m_hat, self.lr, out=m_hat)
            np.divide(m_hat, v_hat, out=m_hat)
            data -= m_hat


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which is useful for training diagnostics.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    # np.dot on the ravelled buffer: no squared temporary per parameter.
    total = float(np.sqrt(sum(float(np.dot(p.grad.ravel(), p.grad.ravel()))
                              for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            np.multiply(p.grad, scale, out=p.grad)
    return total
