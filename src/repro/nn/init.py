"""Weight initialisation schemes for :mod:`repro.nn` modules.

All initialisers return arrays in the process-wide compute dtype from
:mod:`repro.nn.dtypes` (float64 unless a policy overrides it), so a
``float32`` training run allocates float32 weights from the start.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .dtypes import get_default_dtype

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal", "zeros", "normal"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, appropriate before ReLU layers."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(get_default_dtype(), copy=False)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain zero-mean Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=get_default_dtype())
