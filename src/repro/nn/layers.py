"""Standard layers: Linear, MLP, Embedding, Dropout, Sequential."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .fused import fused_linear_sigmoid
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["Linear", "Sequential", "ReLU", "Tanh", "Sigmoid", "Dropout", "MLP", "Embedding"]


class Linear(Module):
    """Affine transformation ``y = x W^T + b``.

    Parameters
    ----------
    in_features:
        Size of the input's last dimension.
    out_features:
        Size of the output's last dimension.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for weight initialisation; a default generator is
        created when omitted (discouraged in library code, handy in tests).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class ReLU(Module):
    """ReLU activation as a module (for use in :class:`Sequential`)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Tanh activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Sigmoid activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Dropout(Module):
    """Inverted dropout layer, active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)
            self._layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


_ACTIVATIONS: dict = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    The AdaMEL classifier Θ (Eq. 7) is a 2-layer feed-forward network; this
    class also serves the deep baselines' classification heads.
    """

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], out_features: int,
                 activation: str = "relu", dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; expected one of {sorted(_ACTIVATIONS)}")
        rng = rng if rng is not None else np.random.default_rng()
        layers: List[Module] = []
        previous = in_features
        for hidden in hidden_sizes:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(_ACTIVATIONS[activation]())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            previous = hidden
        layers.append(Linear(previous, out_features, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)

    def forward_sigmoid(self, x: Tensor) -> Tensor:
        """Forward pass with the output layer fused into ``sigmoid(xW^T+b)``.

        Equivalent to ``sigmoid(self(x))`` but the final affine + sigmoid run
        as one graph node (:func:`repro.nn.fused.fused_linear_sigmoid`) — the
        shape AdaMEL's classifier head Θ uses every training step.
        """
        for layer in self.network._layers[:-1]:
            x = layer(x)
        head: Linear = self.network._layers[-1]
        return fused_linear_sigmoid(x, head.weight, head.bias)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used by the trainable-embedding baselines (Ditto's transformer-lite).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1),
                                name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]
