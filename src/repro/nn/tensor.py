"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
reference implementation uses PyTorch; this reproduction provides a compact
pure-numpy equivalent so the whole repository runs offline on CPU.  The public
surface intentionally mirrors the small subset of the PyTorch tensor API that
the AdaMEL model and its baselines need: elementwise arithmetic with
broadcasting, matrix multiplication, reductions, common nonlinearities,
shape manipulation, and a ``backward()`` that accumulates gradients into
leaf tensors.

Gradient correctness is validated by finite-difference checks in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Process-wide switch used by ``no_grad`` to disable graph building."""

    enabled = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during inference so that forward passes do not build autograd graphs.

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GradMode.enabled


def _is_basic_index(index: object) -> bool:
    """True when ``index`` uses only basic (non-fancy) numpy indexing."""
    items = index if isinstance(index, tuple) else (index,)
    return all(item is None or item is Ellipsis or isinstance(item, slice)
               or (isinstance(item, int) and not isinstance(item, bool))
               for item in items)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast to the shape of ``grad``
    during the forward pass, the gradient flowing back must be summed over the
    broadcast dimensions so that it matches the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in a dynamically built autograd graph.

    Parameters
    ----------
    data:
        Array-like payload.  Always stored as ``float64`` unless an integer
        dtype is explicitly provided (integer tensors never require grad).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    # Ensure expressions like ``ndarray @ tensor`` dispatch to the Tensor's
    # reflected operators instead of numpy's elementwise broadcasting.
    __array_priority__ = 1000

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an output tensor, wiring the backward closure when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate an incoming gradient into this tensor."""
        if not self.requires_grad:
            return
        if type(grad) is not np.ndarray or grad.dtype != np.float64:
            grad = np.asarray(grad, dtype=np.float64)
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            # Copy: the incoming buffer may be shared with sibling operands.
            self.grad = grad.copy()
        else:
            # In-place add is safe — ``self.grad`` is our private copy.
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return self._make_child(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return self._make_child(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return self._make_child(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return self._make_child(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            grad = np.asarray(grad, dtype=np.float64)
            if a.ndim == 1 and b.ndim == 1:
                # dot product: out is scalar
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
            elif a.ndim == 1 and b.ndim >= 2:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (np.expand_dims(grad, -2) @ np.swapaxes(b, -1, -2)).reshape(b.shape[:-2] + (a.shape[0],))
                self._accumulate(_unbroadcast(grad_a, a.shape))
                grad_b = np.expand_dims(a, -1) @ np.expand_dims(grad, -2)
                other_t._accumulate(_unbroadcast(grad_b, b.shape))
            elif b.ndim == 1 and a.ndim >= 2:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = np.expand_dims(grad, -1) @ np.expand_dims(b, 0)
                self._accumulate(_unbroadcast(grad_a, a.shape))
                grad_b = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).reshape(a.shape[:-2] + (b.shape[0],))
                other_t._accumulate(_unbroadcast(grad_b.reshape(-1, b.shape[0]).sum(axis=0)
                                                 if grad_b.ndim > 1 else grad_b, b.shape))
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(_unbroadcast(grad_a, a.shape))
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make_child(data, (self, other_t), backward)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad, dtype=np.float64)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad_full = np.expand_dims(grad_full, ax)
            self._accumulate(np.broadcast_to(grad_full, self.data.shape))

        return self._make_child(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad, dtype=np.float64)
            expanded = self.data.max(axis=axis, keepdims=True) if axis is not None else self.data.max()
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad_full, axis)
            self._accumulate(mask * grad_full)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return self._make_child(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_child(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return self._make_child(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return self._make_child(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make_child(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return self._make_child(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).transpose(inverse))

        return self._make_child(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = self.data.squeeze(axis=axis) if axis is not None else self.data.squeeze()

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return self._make_child(data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return self._make_child(data, (self,), backward)

    def __getitem__(self, index: object) -> "Tensor":
        data = self.data[index]
        basic = _is_basic_index(index)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if basic:
                # Basic indexing never selects an element twice, so a plain
                # in-place add is correct and much faster than ``np.add.at``
                # (an unbuffered ufunc loop).
                full[index] += grad
            else:
                np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_child(np.asarray(data, dtype=np.float64), (self,), backward)

    # ------------------------------------------------------------------ #
    # Backpropagation
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the graph reachable from this node.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Comparisons (detached; return plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no-op for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensor_list], axis=axis)
    sizes = [t.data.shape[axis] for t in tensor_list]

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        offset = 0
        for tensor, size in zip(tensor_list, sizes):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offset, offset + size)
            tensor._accumulate(grad[tuple(slicer)])
            offset += size

    requires = is_grad_enabled() and any(t.requires_grad for t in tensor_list)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensor_list)
        out._backward = backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensor_list], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensor_list):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = i
            tensor._accumulate(grad[tuple(slicer)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensor_list)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensor_list)
        out._backward = backward
    return out
