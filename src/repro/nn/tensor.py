"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
reference implementation uses PyTorch; this reproduction provides a compact
pure-numpy equivalent so the whole repository runs offline on CPU.  The public
surface intentionally mirrors the small subset of the PyTorch tensor API that
the AdaMEL model and its baselines need: elementwise arithmetic with
broadcasting, matrix multiplication, reductions, common nonlinearities,
shape manipulation, and a ``backward()`` that accumulates gradients into
leaf tensors.

Two execution modes share these ops:

* **eager** (the default): every op allocates an output tensor and, when
  gradients are required, a backward closure; ``backward()`` walks the freshly
  built graph.
* **graph replay** (:mod:`repro.nn.graph`): while a :class:`~repro.nn.graph.Tape`
  is capturing, every op additionally records a *forward-recompute* closure
  that re-evaluates the op **in place** into the buffers allocated at record
  time.  A captured graph can then be replayed for new input values with zero
  per-step tensor/closure allocation — the training fast path.

Gradient correctness is validated by finite-difference checks in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .dtypes import get_default_dtype

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled", "recomputed_leaf"]

# numpy interns builtin dtype objects, so identity checks are valid — and
# measurably cheaper than ``in``-membership on the Tensor construction path.
_F64 = np.dtype(np.float64)
_F32 = np.dtype(np.float32)
_FLOAT_DTYPES = (_F32, _F64)


class _GradMode:
    """Process-wide switch used by ``no_grad`` to disable graph building."""

    enabled = True


class _Capture:
    """Process-wide handle to the tape currently capturing ops (or ``None``).

    Set by :class:`repro.nn.graph.Tape`; kept here so the op implementations
    below can record themselves without importing the graph module.
    """

    tape = None


class no_grad:
    """Context manager that disables gradient tracking.

    Used during inference so that forward passes do not build autograd graphs.

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GradMode.enabled


def _is_basic_index(index: object) -> bool:
    """True when ``index`` uses only basic (non-fancy) numpy indexing."""
    items = index if isinstance(index, tuple) else (index,)
    return all(item is None or item is Ellipsis or isinstance(item, slice)
               or (isinstance(item, int) and not isinstance(item, bool))
               for item in items)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast to the shape of ``grad``
    during the forward pass, the gradient flowing back must be summed over the
    broadcast dimensions so that it matches the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _topological_order(root: "Tensor") -> List["Tensor"]:
    """Topological order over the graph reachable from ``root``.

    Factored out of :meth:`Tensor.backward` so the graph-replay executor can
    record the *same* traversal once and reuse it every step — gradient
    accumulation order (and therefore floating-point rounding) then matches
    the eager engine bit for bit.
    """
    topo: List[Tensor] = []
    visited: set = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


class Tensor:
    """A numpy-backed array node in a dynamically built autograd graph.

    Parameters
    ----------
    data:
        Array-like payload.  ``float32``/``float64`` numpy arrays keep their
        dtype; everything else (lists, scalars, integer arrays) is converted
        to the process-wide compute dtype from :mod:`repro.nn.dtypes`
        (``float64`` unless a policy overrides it).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_forward",
                 "_parents", "name")

    # Ensure expressions like ``ndarray @ tensor`` dispatch to the Tensor's
    # reflected operators instead of numpy's elementwise broadcasting.
    __array_priority__ = 1000

    # Process-wide count of Tensor objects ever constructed.  The bench
    # harness diffs this across a training step to make graph-construction
    # overhead visible as a deterministic counter (wall-clock-noise-free).
    _created = 0

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if type(data) is np.ndarray:
            # Existing float arrays keep their dtype (a float32 network keeps
            # computing in float32 even outside the policy context); integer
            # and other arrays are converted to the policy dtype.
            array = data
            dtype = array.dtype
            if dtype is not _F64 and dtype is not _F32 and dtype not in _FLOAT_DTYPES:
                array = array.astype(get_default_dtype())
        else:
            # Lists, python/numpy scalars: adopt the policy dtype directly, so
            # scalar constants do not upcast float32 graphs to float64.
            array = np.asarray(data, dtype=get_default_dtype())
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._forward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        Tensor._created += 1

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _make_child(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an output tensor, wiring the backward closure when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        tape = _Capture.tape
        if tape is not None:
            tape.nodes.append(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate an incoming gradient into this tensor."""
        if not self.requires_grad:
            return
        existing = self.grad
        if (existing is not None and type(grad) is np.ndarray
                and grad.shape == existing.shape and grad.dtype == existing.dtype):
            # Fast path (the common case on the training hot loop): matching
            # buffer, nothing to unbroadcast or cast — add in place.
            existing += grad
            return
        if type(grad) is not np.ndarray or grad.dtype != self.data.dtype:
            grad = np.asarray(grad, dtype=self.data.dtype)
        grad = _unbroadcast(grad, self.data.shape)
        if existing is None:
            # Copy: the incoming buffer may be shared with sibling operands.
            self.grad = grad.copy()
        else:
            # In-place add is safe — ``self.grad`` is our private copy.
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        out = self._make_child(data, (self, other_t), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.add(self.data, other_t.data, out=out.data)
            out._forward = forward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            # Scratch buffers are allocated lazily on first use and reused on
            # every later call.  An eager closure runs once, so behaviour is
            # unchanged; a *captured* closure persists across graph replays
            # and becomes allocation-free from the second step on.  All
            # buffered expressions evaluate the identical ufunc sequence, so
            # values stay bit-equal to the unbuffered forms.
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.negative(grad, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.negative(self.data, out=out.data)
            out._forward = forward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data - other_t.data
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            if other_t.requires_grad:
                if not scratch:
                    scratch.append(np.empty_like(grad))
                other_t._accumulate(np.negative(grad, out=scratch[0]))

        out = self._make_child(data, (self, other_t), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.subtract(self.data, other_t.data, out=out.data)
            out._forward = forward
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data * other_t.data
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            buf = scratch[0]
            # Sequential reuse is safe: _accumulate never retains the buffer.
            self._accumulate(np.multiply(grad, other_t.data, out=buf))
            if other_t.requires_grad:
                other_t._accumulate(np.multiply(grad, self.data, out=buf))

        out = self._make_child(data, (self, other_t), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.multiply(self.data, other_t.data, out=out.data)
            out._forward = forward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data / other_t.data
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            buf = scratch[0]
            self._accumulate(np.divide(grad, other_t.data, out=buf))
            if other_t.requires_grad:
                # d(a/b)/db = -a/b² = -out/b: reusing the forward output saves
                # the ``other**2`` power and one temporary per step.
                np.multiply(grad, data, out=buf)
                np.negative(buf, out=buf)
                other_t._accumulate(np.divide(buf, other_t.data, out=buf))

        out = self._make_child(data, (self, other_t), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.divide(self.data, other_t.data, out=out.data)
            out._forward = forward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
                scratch.append(np.empty_like(self.data))
            buf, pow_buf = scratch
            np.multiply(grad, exponent, out=buf)
            np.power(self.data, exponent - 1, out=pow_buf)
            self._accumulate(np.multiply(buf, pow_buf, out=buf))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.power(self.data, exponent, out=out.data)
            out._forward = forward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data @ other_t.data
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            grad = np.asarray(grad)
            if a.ndim == 1 and b.ndim == 1:
                # dot product: out is scalar
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
            elif a.ndim == 1 and b.ndim >= 2:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (np.expand_dims(grad, -2) @ np.swapaxes(b, -1, -2)).reshape(b.shape[:-2] + (a.shape[0],))
                self._accumulate(_unbroadcast(grad_a, a.shape))
                grad_b = np.expand_dims(a, -1) @ np.expand_dims(grad, -2)
                other_t._accumulate(_unbroadcast(grad_b, b.shape))
            elif b.ndim == 1 and a.ndim >= 2:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = np.expand_dims(grad, -1) @ np.expand_dims(b, 0)
                self._accumulate(_unbroadcast(grad_a, a.shape))
                grad_b = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).reshape(a.shape[:-2] + (b.shape[0],))
                other_t._accumulate(_unbroadcast(grad_b.reshape(-1, b.shape[0]).sum(axis=0)
                                                 if grad_b.ndim > 1 else grad_b, b.shape))
            else:
                if not scratch:
                    scratch.append(grad @ np.swapaxes(b, -1, -2))
                    scratch.append(np.swapaxes(a, -1, -2) @ grad)
                    grad_a, grad_b = scratch
                else:
                    grad_a, grad_b = scratch
                    np.matmul(grad, np.swapaxes(b, -1, -2), out=grad_a)
                    np.matmul(np.swapaxes(a, -1, -2), grad, out=grad_b)
                self._accumulate(_unbroadcast(grad_a, a.shape))
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        out = self._make_child(data, (self, other_t), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                a, b = self.data, other_t.data
                if a.ndim >= 2 and b.ndim >= 2:
                    np.matmul(a, b, out=out.data)
                else:
                    out.data[...] = a @ b
            out._forward = forward
        return out

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) @ self

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad_full = np.expand_dims(grad_full, ax)
            self._accumulate(np.broadcast_to(grad_full, self.data.shape))

        out = self._make_child(np.asarray(data), (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.sum(self.data, axis=axis, keepdims=keepdims, out=out.data)
            out._forward = forward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad_full = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True) if axis is not None else self.data.max()
            mask = (self.data == expanded).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            if axis is not None and not keepdims:
                grad_full = np.expand_dims(grad_full, axis)
            self._accumulate(mask * grad_full)

        out = self._make_child(np.asarray(data), (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.amax(self.data, axis=axis, keepdims=keepdims, out=out.data)
            out._forward = forward
        return out

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.multiply(grad, data, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.exp(self.data, out=data)
            out._forward = forward
        return out

    def log(self) -> "Tensor":
        data = np.log(self.data)
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.divide(grad, self.data, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.log(self.data, out=data)
            out._forward = forward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(data))
            buf = scratch[0]
            # grad * (1 - data**2), evaluated with the same ufunc sequence.
            np.power(data, 2, out=buf)
            np.subtract(1.0, buf, out=buf)
            self._accumulate(np.multiply(grad, buf, out=buf))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.tanh(self.data, out=data)
            out._forward = forward
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(data))
                scratch.append(np.empty_like(data))
            buf, one_minus = scratch
            np.multiply(grad, data, out=buf)
            np.subtract(1.0, data, out=one_minus)
            self._accumulate(np.multiply(buf, one_minus, out=buf))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                # Same expression as the eager path, evaluated in place.
                np.negative(self.data, out=data)
                np.exp(data, out=data)
                np.add(data, 1.0, out=data)
                np.divide(1.0, data, out=data)
            out._forward = forward
        return out

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        data = self.data * mask
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.multiply(grad, mask, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                mask[...] = self.data > 0
                np.multiply(self.data, mask, out=data)
            out._forward = forward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        data = np.abs(self.data)
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.multiply(grad, sign, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.sign(self.data, out=sign)
                np.absolute(self.data, out=data)
            out._forward = forward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
        scratch: list = []

        def backward(grad: np.ndarray) -> None:
            if not scratch:
                scratch.append(np.empty_like(grad))
            self._accumulate(np.multiply(grad, mask, out=scratch[0]))

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.clip(self.data, low, high, out=data)
                mask[...] = (self.data >= low) & (self.data <= high)
            out._forward = forward
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def _attach_view_forward(self, out: "Tensor",
                             recompute: Callable[[], np.ndarray]) -> "Tensor":
        """Wire the replay-forward hook for a shape op.

        When the result is a *view* of this tensor's buffer no recompute is
        needed on replay — in-place updates to the parent are visible through
        the view.  When numpy had to copy (non-contiguous reshape, fancy
        index, scalar extraction) the closure re-materialises the copy.
        """
        if _Capture.tape is None:
            return out
        if np.shares_memory(out.data, self.data):
            return out

        def forward() -> None:
            out.data[...] = recompute()
        out._forward = forward
        return out

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        out = self._make_child(data, (self,), backward)
        return self._attach_view_forward(out, lambda: self.data.reshape(shape))

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = tuple(axes) if axes else tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).transpose(inverse))

        out = self._make_child(data, (self,), backward)
        return self._attach_view_forward(out, lambda: self.data.transpose(axes_t))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = self.data.squeeze(axis=axis) if axis is not None else self.data.squeeze()

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        out = self._make_child(data, (self,), backward)
        return self._attach_view_forward(
            out, lambda: self.data.squeeze(axis=axis) if axis is not None
            else self.data.squeeze())

    def unsqueeze(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        out = self._make_child(data, (self,), backward)
        return self._attach_view_forward(out, lambda: np.expand_dims(self.data, axis))

    def contiguous(self) -> "Tensor":
        """Return a C-contiguous tensor with the same values (identity grad).

        A no-op for already-contiguous data.  Used after layout-changing ops
        (e.g. the transpose in the AdaMEL latent projection) so downstream
        elementwise kernels and flattening reshapes run on contiguous memory
        instead of strided views.
        """
        if self.data.flags.c_contiguous:
            return self
        data = np.ascontiguousarray(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        out = self._make_child(data, (self,), backward)
        if _Capture.tape is not None:
            def forward() -> None:
                np.copyto(data, self.data)
            out._forward = forward
        return out

    def __getitem__(self, index: object) -> "Tensor":
        data = self.data[index]
        basic = _is_basic_index(index)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            # Scatter straight into the parent's grad buffer: allocating a
            # full zeros_like(parent) per slice — the old behaviour — made
            # sliced time loops (e.g. the GRU) quadratic in sequence length.
            target = self.grad
            if target is None:
                target = np.zeros_like(self.data)
                self.grad = target
            if basic:
                # Basic indexing never selects an element twice, so a plain
                # in-place add is correct and much faster than ``np.add.at``
                # (an unbuffered ufunc loop).
                target[index] += grad
            else:
                np.add.at(target, index, grad)

        out = self._make_child(np.asarray(data), (self,), backward)
        return self._attach_view_forward(out, lambda: self.data[index])

    # ------------------------------------------------------------------ #
    # Backpropagation
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo = _topological_order(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Comparisons (detached; return plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no-op for existing tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def recomputed_leaf(compute: Callable[[], np.ndarray], name: Optional[str] = None) -> Tensor:
    """A constant leaf whose value is re-evaluated on every graph replay.

    Eagerly this is just ``Tensor(compute())``.  Under capture, the zero-arg
    ``compute`` callable is recorded on the tape so that data-dependent
    constants — a softmax's detached max-shift, a fresh dropout mask, the
    support-loss weights — are refreshed from the *current* buffer contents
    instead of being frozen at record time.  ``compute`` must return an array
    of fixed shape and must read its inputs through references that stay
    valid across replays (e.g. ``x.data`` of a captured tensor).
    """
    out = Tensor(compute(), name=name)
    tape = _Capture.tape
    if tape is not None:
        def forward() -> None:
            out.data[...] = compute()
        out._forward = forward
        tape.nodes.append(out)
    return out


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensor_list], axis=axis)
    sizes = [t.data.shape[axis] for t in tensor_list]

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        offset = 0
        for tensor, size in zip(tensor_list, sizes):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offset, offset + size)
            tensor._accumulate(grad[tuple(slicer)])
            offset += size

    requires = is_grad_enabled() and any(t.requires_grad for t in tensor_list)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensor_list)
        out._backward = backward
    tape = _Capture.tape
    if tape is not None:
        def forward() -> None:
            offset = 0
            for tensor, size in zip(tensor_list, sizes):
                slicer = [slice(None)] * out.data.ndim
                slicer[axis] = slice(offset, offset + size)
                out.data[tuple(slicer)] = tensor.data
                offset += size
        out._forward = forward
        tape.nodes.append(out)
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensor_list = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensor_list], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensor_list):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = i
            tensor._accumulate(grad[tuple(slicer)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensor_list)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensor_list)
        out._backward = backward
    tape = _Capture.tape
    if tape is not None:
        def forward() -> None:
            for i, tensor in enumerate(tensor_list):
                slicer = [slice(None)] * out.data.ndim
                slicer[axis] = i
                out.data[tuple(slicer)] = tensor.data
        out._forward = forward
        tape.nodes.append(out)
    return out
