"""Numpy-based neural-network substrate (autograd, layers, optimisers).

This package replaces PyTorch for the AdaMEL reproduction: it provides the
minimal tensor/autograd engine, layers, attention mechanisms, recurrent cells,
losses and optimisers that the AdaMEL model and its deep baselines require.
"""

from . import functional
from .attention import AdditiveAttention, ScaledDotProductAttention, SelfAttentionEncoder
from .dtypes import DtypePolicy, get_default_dtype, set_default_dtype, using_dtype
from .fused import (
    fused_attention_softmax,
    fused_kl_divergence,
    fused_linear_sigmoid,
    fused_softmax_cross_entropy,
)
from .gradcheck import check_gradient, numerical_gradient
from .graph import CompiledGraph, GraphShapeMismatch, Tape
from .layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential, Sigmoid, Tanh
from .losses import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    cross_entropy,
    kl_divergence,
    mse_loss,
)
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRU, GRUCell, RNNCell
from .tensor import (Tensor, as_tensor, concatenate, is_grad_enabled, no_grad,
                     recomputed_leaf, stack)

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "recomputed_leaf",
    "Tape",
    "CompiledGraph",
    "GraphShapeMismatch",
    "DtypePolicy",
    "get_default_dtype",
    "set_default_dtype",
    "using_dtype",
    "fused_linear_sigmoid",
    "fused_attention_softmax",
    "fused_softmax_cross_entropy",
    "fused_kl_divergence",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Sequential",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Embedding",
    "AdditiveAttention",
    "ScaledDotProductAttention",
    "SelfAttentionEncoder",
    "RNNCell",
    "GRUCell",
    "GRU",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "check_gradient",
    "numerical_gradient",
]
