"""Base classes for parameterised neural-network modules.

``Module`` provides recursive parameter discovery, train/eval switching, and
state (de)serialisation, mirroring the small part of ``torch.nn.Module`` that
the AdaMEL model and its baselines rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a learnable module parameter."""

    def __init__(self, data: np.ndarray, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation and
    serialisation.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Parameter access
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its submodules."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters (paper Sec. 4.5)."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            param = own[name]
            if param.data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {values.shape}"
                )
            # Write in place, preserving the parameter's dtype: compiled
            # graphs and optimiser state hold references to this buffer.
            np.copyto(param.data, np.asarray(values))

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)
