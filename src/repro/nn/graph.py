"""Graph capture & replay: the training fast path of the autograd engine.

The eager engine in :mod:`repro.nn.tensor` rebuilds its graph on every
forward — one python closure, one output array and one ``Tensor`` object per
op, plus a topological sort per ``backward()``.  For model *training* the
per-step graph is static (same ops, same shapes every mini-batch), so that
construction cost can be paid once and amortised over the whole run:

* :class:`Tape` — a ``with`` context during which every tensor op records a
  *forward-recompute* closure that re-evaluates the op in place into the
  buffers allocated at record time (see ``tensor.py``).
* :class:`CompiledGraph` — wraps a captured tape: refreshes the registered
  input leaves (``np.copyto`` into their existing buffers), replays the
  forward program, and re-runs the backward pass over the topological order
  recorded from the eager engine — so gradient accumulation happens in the
  same order, with the same rounding, as an eager step.  Gradient buffers are
  retained across steps and zeroed in place.

Invariants the capture relies on (enforced/observed by the callers):

* optimisers update ``param.data`` **in place** (``-=``), never by rebinding
  the attribute to a fresh array — recorded views (e.g. ``weight.T``) alias
  the original buffer;
* data-dependent constants inside the captured region are created through
  :func:`repro.nn.tensor.recomputed_leaf` so they are refreshed per replay;
* input shapes are frozen at record time — :meth:`CompiledGraph.step` raises
  :class:`GraphShapeMismatch` for any other shape and the caller falls back
  to the eager engine (e.g. the last partial mini-batch of an epoch).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from .tensor import Tensor, _Capture, _topological_order

__all__ = ["Tape", "CompiledGraph", "GraphShapeMismatch"]


class GraphShapeMismatch(RuntimeError):
    """An input fed to ``replay`` does not match the recorded buffer shape."""


class Tape:
    """Context manager that records tensor ops for later replay.

    While active, every op appends its output node to :attr:`nodes` (in
    creation order, which is a valid execution order: parents are always
    created before children).  Capture does not change eager semantics — the
    recording run computes exactly what an uncaptured run would.
    """

    def __init__(self) -> None:
        self.nodes: List[Tensor] = []

    def __enter__(self) -> "Tape":
        if _Capture.tape is not None:
            raise RuntimeError("a Tape is already capturing; captures do not nest")
        _Capture.tape = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        _Capture.tape = None


class CompiledGraph:
    """A recorded computation that can be replayed for new input values.

    Parameters
    ----------
    tape:
        The tape the computation was captured on.
    inputs:
        Named leaf tensors whose ``data`` buffers are refreshed on every
        replay.  Shapes are frozen at record time.
    loss:
        The scalar output to backpropagate from.  Omit for forward-only
        graphs (e.g. the per-epoch attention recomputation).
    """

    def __init__(self, tape: Tape, inputs: Mapping[str, Tensor],
                 loss: Optional[Tensor] = None) -> None:
        self._inputs: Dict[str, Tensor] = dict(inputs)
        self._forward_program = [node for node in tape.nodes if node._forward is not None]
        # Bound-method tuple: the replay loop dispatches straight to the
        # closures without per-step attribute lookups.
        self._forward_fns = tuple(node._forward for node in self._forward_program)
        self._loss = loss
        self._topo: List[Tensor] = []
        self._seed: Optional[np.ndarray] = None
        if loss is not None:
            if loss.data.size != 1:
                raise ValueError("loss must be a scalar tensor")
            if not loss.requires_grad:
                raise ValueError("loss does not require grad; was the capture "
                                 "run under no_grad()?")
            # The exact traversal the eager engine would use — recorded once,
            # replayed every step, so accumulation order (and floating-point
            # rounding) matches eager backward bit for bit.
            self._topo = _topological_order(loss)
            self._seed = np.ones_like(loss.data)

    # ------------------------------------------------------------------ #
    # Introspection (bench counters)
    # ------------------------------------------------------------------ #
    @property
    def num_forward_ops(self) -> int:
        """Ops re-executed per replayed forward (views/leaves excluded)."""
        return len(self._forward_program)

    @property
    def num_backward_ops(self) -> int:
        """Nodes carrying a backward closure on the recorded loss path."""
        return sum(1 for node in self._topo if node._backward is not None)

    @property
    def num_nodes(self) -> int:
        """All nodes recorded on the tape (including views and leaves)."""
        return len(self._topo) if self._topo else len(self._forward_program)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def load_inputs(self, inputs: Mapping[str, np.ndarray]) -> None:
        """Copy new values into the recorded input buffers (shape-checked)."""
        for name, value in inputs.items():
            try:
                target = self._inputs[name]
            except KeyError:
                raise KeyError(f"unknown graph input {name!r}; registered: "
                               f"{sorted(self._inputs)}") from None
            value = np.asarray(value)
            if value.shape != target.data.shape:
                raise GraphShapeMismatch(
                    f"input {name!r} has shape {value.shape} but the graph was "
                    f"recorded for {target.data.shape}"
                )
            np.copyto(target.data, value)

    def input_array(self, name: str) -> np.ndarray:
        """The recorded buffer for input ``name`` (for in-place producers).

        Callers may fill this buffer directly — e.g. ``np.take(source, idx,
        axis=0, out=graph.input_array("features"))`` — instead of building a
        gathered temporary and paying a second copy through ``load_inputs``.
        """
        return self._inputs[name].data

    def forward(self, inputs: Optional[Mapping[str, np.ndarray]] = None) -> None:
        """Replay the forward program for the given input values."""
        if inputs:
            self.load_inputs(inputs)
        for fn in self._forward_fns:
            fn()

    def zero_grads(self) -> None:
        """Zero every retained gradient buffer in place."""
        for node in self._topo:
            grad = node.grad
            if grad is not None:
                grad.fill(0.0)

    def backward(self) -> None:
        """Replay the backward pass; gradients accumulate into the leaves."""
        if self._loss is None:
            raise RuntimeError("this graph was compiled without a loss")
        self.zero_grads()
        # Mirrors Tensor.backward() over the recorded topological order.
        self._loss._accumulate(self._seed)
        for node in reversed(self._topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def step(self, inputs: Optional[Mapping[str, np.ndarray]] = None) -> float:
        """One training step: refresh inputs, forward, backward.

        Returns the (python float) loss value so callers do not have to touch
        the buffer before the next replay overwrites it.
        """
        self.forward(inputs)
        self.backward()
        return float(self._loss.data)
