"""Loss functions used by AdaMEL and the deep baselines.

The AdaMEL paper defines:

* ``L_base`` — binary cross-entropy over labeled source-domain pairs (Eq. 8);
* ``L_target`` — KL divergence between per-pair source attention distributions
  and the averaged target-domain attention distribution (Eq. 10);
* ``L_support`` — centroid-distance-weighted cross-entropy over the labeled
  support set (Eq. 12).

``L_support`` lives in :mod:`repro.core.losses` because it needs the model's
attention head; the generic losses live here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .fused import fused_kl_divergence, fused_softmax_cross_entropy
from .tensor import Tensor, as_tensor

__all__ = [
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "kl_divergence",
    "mse_loss",
]

_EPS = 1e-9


def binary_cross_entropy(predictions: Tensor, targets: Tensor,
                         weights: Optional[Tensor] = None) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets.

    This is the paper's ``L_base`` (Eq. 8).  ``weights`` allows per-sample
    re-weighting, which the support-set loss (Eq. 12) builds on.
    """
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    clipped = predictions.clip(_EPS, 1.0 - _EPS)
    per_sample = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    if weights is not None:
        per_sample = per_sample * as_tensor(weights)
    return per_sample.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor,
                                     weights: Optional[Tensor] = None) -> Tensor:
    """Binary cross-entropy applied to raw logits (numerically safer)."""
    return binary_cross_entropy(as_tensor(logits).sigmoid(), targets, weights)


def cross_entropy(logits: Tensor, target_indices: np.ndarray) -> Tensor:
    """Mean multi-class cross-entropy from logits and integer class labels.

    Runs as one fused softmax+NLL node with an analytic backward
    (:func:`repro.nn.fused.fused_softmax_cross_entropy`).
    """
    return fused_softmax_cross_entropy(as_tensor(logits), target_indices)


def kl_divergence(p: Tensor, q: Tensor, axis: int = -1) -> Tensor:
    """KL(p || q) summed over ``axis`` then averaged over remaining dims.

    In the paper's ``L_target`` (Eq. 10), ``p`` is the attention distribution
    averaged over the target domain and ``q`` is a source-domain pair's
    attention distribution; the divergence is summed over the ``F`` features
    and averaged over the batch.
    """
    return fused_kl_divergence(as_tensor(p), as_tensor(q), axis=axis, eps=_EPS)


def mse_loss(predictions: Tensor, targets: Tensor) -> Tensor:
    """Mean squared error."""
    diff = as_tensor(predictions) - as_tensor(targets)
    return (diff * diff).mean()
