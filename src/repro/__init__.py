"""AdaMEL: deep transfer learning for multi-source entity linkage (VLDB 2021).

This package is a from-scratch, CPU-only reproduction of the AdaMEL system
and of every substrate it depends on — a numpy autograd engine, fixed hashed
token embeddings, synthetic multi-source corpora, the deep and non-deep
baselines of the paper's evaluation, and an experiment harness regenerating
each table and figure.

Quickstart
----------
>>> from repro import AdaMELHybrid, AdaMELConfig
>>> from repro.data.generators import MusicCorpusGenerator
>>> corpus = MusicCorpusGenerator("artist", seed=7).generate()
>>> scenario = corpus.build_scenario(seen_sources=["website_1", "website_2", "website_3"])
>>> model = AdaMELHybrid(AdaMELConfig(epochs=10))
>>> model.fit(scenario)            # doctest: +SKIP
>>> scores = model.predict_proba(scenario.test.pairs)  # doctest: +SKIP
"""

from .core import (
    AdaMELBase,
    AdaMELConfig,
    AdaMELFew,
    AdaMELHybrid,
    AdaMELNetwork,
    AdaMELTrainer,
    AdaMELZero,
    create_variant,
)
from .data.domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from .data.records import EntityPair, Record
from .data.schema import Schema
from .eval.evaluation import compare_models, evaluate_model
from .eval.metrics import classification_report, pr_auc
from .infer import BatchedPredictor, load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AdaMELConfig",
    "AdaMELNetwork",
    "AdaMELTrainer",
    "AdaMELBase",
    "AdaMELZero",
    "AdaMELFew",
    "AdaMELHybrid",
    "create_variant",
    "Record",
    "EntityPair",
    "Schema",
    "MELScenario",
    "PairCollection",
    "SourceDomain",
    "TargetDomain",
    "SupportSet",
    "evaluate_model",
    "compare_models",
    "pr_auc",
    "classification_report",
    "BatchedPredictor",
    "save_model",
    "load_model",
]
