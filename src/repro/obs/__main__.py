"""CLI entry point: ``python -m repro.obs``.

Renders the telemetry dashboard from either

* ``--from-export run.jsonl`` — a JSONL export written by
  :func:`repro.obs.write_export` (or any entry point's ``--export`` flag), or
* ``--demo`` — a small telemetry-enabled pipeline run executed in-process,
  so the dashboard (and optionally an export) can be produced with no prior
  artifacts.

``--exposition`` prints the Prometheus text format instead of the dashboard
(export mode reconstructs it from the metric lines); ``--timeline`` prints
per-shard ASCII Gantt timelines of the pipeline trace trees — the view that
shows worker overlap and stragglers after a sharded ``--workers N`` run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Mapping, Optional, Sequence

from . import telemetry, write_export
from .dashboard import render_dashboard
from .export import ExportError, load_export
from .timeline import render_timelines


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render the repro telemetry dashboard from an export or a demo run.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--from-export", metavar="JSONL", default=None,
                        help="render a saved telemetry export")
    source.add_argument("--demo", action="store_true",
                        help="run a small telemetry-enabled pipeline demo in-process")
    parser.add_argument("--export", metavar="JSONL", default=None,
                        help="with --demo: also write the run's telemetry export here")
    parser.add_argument("--exposition", action="store_true",
                        help="print Prometheus text exposition instead of the dashboard")
    parser.add_argument("--timeline", action="store_true",
                        help="print per-shard ASCII Gantt timelines of the "
                             "pipeline trace trees instead of the dashboard")
    parser.add_argument("--max-traces", type=int, default=5,
                        help="trace trees to show, newest first (default: 5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="with --demo: corpus/model seed (default: 0)")
    return parser


def _exposition_from_export(metrics: Sequence[Mapping[str, object]]) -> str:
    """Rebuild Prometheus text from exported metric lines via a registry."""
    from .metrics import MetricsRegistry

    registry = MetricsRegistry()
    for entry in metrics:
        name = str(entry["name"])
        labels = dict(entry.get("labels") or {})
        help_text = str(entry.get("help") or "")
        kind = entry.get("kind")
        if kind == "counter":
            registry.counter(name, help_text, labels).inc(float(entry["value"]))
        elif kind == "gauge":
            registry.gauge(name, help_text, labels).set(float(entry["value"]))
        elif kind == "histogram":
            buckets = entry.get("buckets") or []
            bounds = [float(bound) for bound, _ in buckets
                      if not isinstance(bound, str)]
            series = registry.histogram(name, help_text, labels,
                                        buckets=bounds or [1.0])
            with series._lock:
                series._counts = [int(count) for _, count in buckets]
                series._count = int(entry["count"])
                series._sum = float(entry["sum"])
    return registry.exposition()


def _run_demo(seed: int, export_path: Optional[str],
              max_traces: int, exposition: bool,
              timeline: bool = False) -> int:
    # Imported lazily: the export path of this CLI must work without pulling
    # in the model/pipeline stack.
    from ..bench.runner import select_scale
    from ..core.variants import create_variant
    from ..experiments.scenarios import build_corpus, build_scenario
    from ..infer.predictor import BatchedPredictor
    from ..pipeline.engine import LinkagePipeline, PipelineConfig

    _, scale = select_scale("smoke")
    with telemetry() as session:
        scenario = build_scenario("music3k", "artist", mode="overlapping",
                                  scale=scale, seed=seed)
        model = create_variant("adamel-hyb", scale.adamel_config(epochs=4))
        print("demo: training a small adamel-hyb model ...", flush=True)
        model.fit(scenario)
        predictor = BatchedPredictor.from_trainer(model)
        corpus = build_corpus("music3k", entity_type="artist",
                              scale=scale, seed=seed)
        print(f"demo: linking {len(corpus.records)} records ...", flush=True)
        pipeline = LinkagePipeline(predictor, config=PipelineConfig())
        pipeline.run(corpus.records)

    if export_path:
        path = write_export(export_path, registry=session.registry,
                            collector=session.collector)
        print(f"demo: wrote telemetry export to {path}", flush=True)
    if exposition:
        print(session.registry.exposition(), end="")
    elif timeline:
        print(render_timelines(
            [root.to_dict() for root in session.collector.roots()]))
    else:
        print(render_dashboard(
            metrics=session.registry.snapshot(),
            traces=[root.to_dict() for root in session.collector.roots()],
            title="repro.obs telemetry (demo pipeline run)",
            max_traces=max_traces))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.export and not args.demo:
        print("error: --export only applies to --demo (use --from-export to read)",
              file=sys.stderr)
        return 2
    if args.exposition and args.timeline:
        print("error: --exposition and --timeline are mutually exclusive",
              file=sys.stderr)
        return 2

    if args.demo:
        return _run_demo(args.seed, args.export, args.max_traces,
                         args.exposition, args.timeline)

    try:
        export = load_export(args.from_export)
    except FileNotFoundError:
        print(f"error: no such export file: {args.from_export}", file=sys.stderr)
        return 2
    except ExportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.exposition:
        print(_exposition_from_export(export["metrics"]), end="")
    elif args.timeline:
        print(render_timelines(export["traces"]))
    else:
        print(render_dashboard(metrics=export["metrics"],
                               traces=export["traces"],
                               title=f"repro.obs telemetry ({args.from_export})",
                               max_traces=args.max_traces))
    return 0


if __name__ == "__main__":
    sys.exit(main())
