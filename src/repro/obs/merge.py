"""Mergeable telemetry: ship worker snapshots across processes and fold them in.

A forked sharded worker (:mod:`repro.pipeline.sharded`) runs its phase under
its *own* registry + collector, then ships everything back as one picklable
:class:`TelemetryPayload` — a plain-dict metrics snapshot plus a span-tree
forest.  The driver folds payloads into its live session with
:func:`merge_payload`, so ``--export`` and the dashboard see one coherent
story instead of per-process fragments.

The merge is an algebra over snapshot entries, keyed by ``(name, labels)``:

* **counters sum** — events happened in both processes;
* **gauges take the watermark max** — point-in-time values from different
  processes do not add, but "the deepest any queue ever got" is well defined;
* **histograms add bucket-wise** — both sides must share the same fixed
  bucket bounds (mismatched layouts raise), so counts, ``sum``/``count`` and
  the min/max extrema combine losslessly;
* **labeled series union** — a series seen by only one side is simply
  registered on the other (registration is idempotent, so repeated merges of
  disjoint label sets commute).

Because every operation is commutative and associative (up to float
rounding; bucket counts are exact integers), merging N worker snapshots in
any order equals recording everything in one registry — the property the
merge-algebra tests assert.

Span forests re-root under a caller-supplied parent span: each shipped root
(e.g. a worker's ``sharded.worker`` tree) becomes a child of the driver's
enclosing span, tagged with whatever labels the caller adds (shard id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from .metrics import (MetricsRegistry, active_registry)
from .tracing import NOOP_SPAN, Span, TraceCollector, active_collector

__all__ = ["TelemetryPayload", "capture_payload", "merge_metric_entries",
           "merge_payload"]


@dataclass
class TelemetryPayload:
    """One process's telemetry, in plain picklable dicts.

    ``metrics`` is a registry snapshot (``MetricsRegistry.snapshot()``
    format), ``spans`` a list of root span trees (``Span.to_dict()`` format),
    ``context`` free-form provenance (shard id, pid, ...).  Nothing here
    holds locks or live objects, so the payload crosses pickle/fork/JSON
    boundaries unchanged.
    """

    metrics: List[Dict[str, object]] = field(default_factory=list)
    spans: List[Dict[str, object]] = field(default_factory=list)
    context: Dict[str, object] = field(default_factory=dict)


def capture_payload(registry: Optional[MetricsRegistry] = None,
                    collector: Optional[TraceCollector] = None,
                    **context: object) -> TelemetryPayload:
    """Snapshot a registry + collector into a shippable payload.

    Defaults to the active pair; either side may be absent (a payload with
    metrics but no spans is fine, and vice versa).
    """
    registry = registry if registry is not None else active_registry()
    collector = collector if collector is not None else active_collector()
    return TelemetryPayload(
        metrics=registry.snapshot() if registry is not None else [],
        spans=[root.to_dict() for root in collector.roots()]
        if collector is not None else [],
        context=dict(context))


def merge_metric_entries(registry: MetricsRegistry,
                         entries: Iterable[Mapping[str, object]]) -> None:
    """Fold snapshot entries into ``registry`` under the merge algebra.

    Unknown series are registered on the fly (labeled-series union); known
    series combine kind-appropriately via each instrument's
    ``merge_snapshot``.  A kind clash or a histogram bucket-layout mismatch
    raises ``ValueError`` — silent resolution loss is worse than a loud
    merge failure.
    """
    for entry in entries:
        kind = entry.get("kind")
        name = str(entry["name"])
        labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
        help_text = str(entry.get("help") or "")
        if kind == "counter":
            registry.counter(name, help_text, labels).merge_snapshot(entry)
        elif kind == "gauge":
            registry.gauge(name, help_text, labels).merge_snapshot(entry)
        elif kind == "histogram":
            bounds = [float(bound) for bound, _ in
                      (entry.get("buckets") or ())  # type: ignore[union-attr]
                      if not isinstance(bound, str)]
            if not bounds:
                raise ValueError(f"histogram entry {name!r} has no finite "
                                 f"bucket bounds; cannot merge")
            registry.histogram(name, help_text, labels,
                               buckets=bounds).merge_snapshot(entry)
        else:
            raise ValueError(f"cannot merge metric entry {name!r} of "
                             f"unknown kind {kind!r}")


def merge_payload(payload: TelemetryPayload,
                  registry: Optional[MetricsRegistry] = None,
                  collector: Optional[TraceCollector] = None,
                  parent: Optional[Span] = None,
                  **span_labels: object) -> List[Span]:
    """Fold one worker payload into a live telemetry session.

    Metrics merge into ``registry`` (default: the active one; skipped while
    telemetry is off).  Each shipped root span is rebuilt, tagged with
    ``span_labels`` (e.g. ``shard=3``) and re-rooted as a child of
    ``parent``; with no parent the roots go to ``collector`` (default: the
    active one) as standalone trees.  Returns the adopted spans.
    """
    registry = registry if registry is not None else active_registry()
    if registry is not None and payload.metrics:
        merge_metric_entries(registry, payload.metrics)

    adopted: List[Span] = []
    for node in payload.spans:
        span = Span.from_dict(node)
        span.attributes.update(span_labels)
        adopted.append(span)
    if not adopted:
        return adopted
    if parent is not None and parent is not NOOP_SPAN:
        parent.children.extend(adopted)
    else:
        collector = collector if collector is not None else active_collector()
        if collector is not None:
            for span in adopted:
                collector.add_root(span)
    return adopted
