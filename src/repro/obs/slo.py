"""Rolling-window SLOs with multi-window burn-rate evaluation.

One layer above raw metrics: an *objective* promises that a fraction
(``target``) of events over a rolling window are *good*, and evaluation
reports how fast the error budget is burning.  Three objective kinds cover
the serving path:

* ``latency_quantile`` — an event is good when its latency is at or below
  ``threshold`` seconds; with ``target=0.95`` that is exactly "p95 ≤
  threshold".  Evaluation also reports the observed quantile per window.
* ``error_rate`` — an event is good when it did not error; ``threshold`` is
  unused.
* ``queue_saturation`` — an event is a queue-fullness sample in ``[0, 1]``
  (queued pairs over the backpressure bound); good when at or below
  ``threshold``.

**Multi-window burn rate** (the SRE alerting discipline): for each of two
rolling windows — a short one that reacts fast and a long one that filters
blips — the burn rate is ``(1 - good_ratio) / (1 - target)``: 1.0 means the
error budget is being spent exactly at the sustainable pace, higher means
faster.  An objective is

* ``breached`` when *both* windows burn at ``burn_threshold`` or above
  (the problem is real and sustained),
* ``burning`` when only the short window does (spike — watch it),
* ``pass`` otherwise, and ``no_data`` with no samples in the long window.

:class:`SLOMonitor` holds a catalog of objectives, takes recordings from
request paths (thread-safe; an injectable clock keeps tests deterministic)
and renders one ``health()`` report — the payload behind
``python -m repro.serve --health``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SLO", "SLOConfig", "SLOMonitor", "default_service_objectives",
           "format_health", "worst_status"]

SLO_KINDS = ("latency_quantile", "error_rate", "queue_saturation")

# Short window reacts to spikes; long window confirms they are sustained.
DEFAULT_WINDOWS: Tuple[float, float] = (60.0, 600.0)

# Rank for folding per-objective statuses into one overall verdict.
_STATUS_RANK = {"no_data": 0, "pass": 1, "burning": 2, "breached": 3}


def worst_status(*statuses: str) -> str:
    """Fold health statuses into the most severe one.

    The severity order is ``no_data < pass < burning < breached`` — the
    same ranking :meth:`SLOMonitor.health` uses across objectives.  Used by
    reports that mix SLO verdicts with non-SLO signals (circuit-breaker
    state, a read-only storage engine).
    """
    if not statuses:
        return "no_data"
    for status in statuses:
        if status not in _STATUS_RANK:
            raise ValueError(f"unknown health status {status!r} "
                             f"(known: {', '.join(_STATUS_RANK)})")
    return max(statuses, key=lambda status: _STATUS_RANK[status])


@dataclass(frozen=True)
class SLOConfig:
    """One objective: what fraction of events must be good, and what good means."""

    name: str
    kind: str
    target: float = 0.99
    threshold: float = 0.05
    windows: Tuple[float, float] = DEFAULT_WINDOWS
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"expected one of {SLO_KINDS}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        short, long = self.windows
        if not 0.0 < short < long:
            raise ValueError(f"windows must be (short, long) with "
                             f"0 < short < long, got {self.windows}")
        if self.burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be positive, "
                             f"got {self.burn_threshold}")


class SLO:
    """Rolling sample window plus burn-rate evaluation for one objective."""

    def __init__(self, config: SLOConfig,
                 clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        # (timestamp, value, good); pruned to the long window on record.
        self._samples: Deque[Tuple[float, float, bool]] = deque()

    def record(self, value: float, good: Optional[bool] = None,
               now: Optional[float] = None) -> None:
        """Record one event; ``good`` defaults to ``value <= threshold``.

        ``error_rate`` recorders pass ``good`` explicitly (the value is just
        carried along); latency/saturation recorders let the threshold
        decide.
        """
        now = self._clock() if now is None else now
        if good is None:
            good = float(value) <= self.config.threshold
        horizon = now - self.config.windows[1]
        with self._lock:
            self._samples.append((now, float(value), bool(good)))
            while self._samples and self._samples[0][0] < horizon:
                self._samples.popleft()

    def evaluate(self, now: Optional[float] = None) -> Dict[str, object]:
        """Burn rates over both windows, folded into one status."""
        now = self._clock() if now is None else now
        config = self.config
        with self._lock:
            samples = [s for s in self._samples
                       if s[0] >= now - config.windows[1]]

        budget = 1.0 - config.target
        windows: Dict[str, Dict[str, float]] = {}
        burns: List[float] = []
        for horizon in config.windows:
            scoped = [s for s in samples if s[0] >= now - horizon]
            total = len(scoped)
            good = sum(1 for s in scoped if s[2])
            good_ratio = good / total if total else 1.0
            burn = (1.0 - good_ratio) / budget if total else 0.0
            burns.append(burn)
            entry: Dict[str, float] = {
                "seconds": horizon,
                "total": float(total),
                "good": float(good),
                "good_ratio": good_ratio,
                "burn_rate": burn,
            }
            if config.kind == "latency_quantile" and total:
                entry["observed_quantile"] = float(np.percentile(
                    [s[1] for s in scoped], config.target * 100.0))
            windows[f"{horizon:g}s"] = entry

        if not samples:
            status = "no_data"
        elif all(b >= config.burn_threshold for b in burns):
            status = "breached"
        elif burns[0] >= config.burn_threshold:
            status = "burning"
        else:
            status = "pass"
        return {
            "name": config.name,
            "kind": config.kind,
            "target": config.target,
            "threshold": config.threshold,
            "burn_threshold": config.burn_threshold,
            "status": status,
            "windows": windows,
        }


class SLOMonitor:
    """A catalog of objectives with one combined health verdict."""

    def __init__(self, objectives: Sequence[SLOConfig],
                 clock=time.monotonic) -> None:
        self._slos: Dict[str, SLO] = {}
        for config in objectives:
            if config.name in self._slos:
                raise ValueError(f"duplicate SLO name {config.name!r}")
            self._slos[config.name] = SLO(config, clock=clock)

    def slo(self, name: str) -> SLO:
        return self._slos[name]

    def __contains__(self, name: object) -> bool:
        return name in self._slos

    def names(self) -> List[str]:
        return list(self._slos)

    def record(self, name: str, value: float, good: Optional[bool] = None,
               now: Optional[float] = None) -> None:
        """Record one event against the named objective."""
        self._slos[name].record(value, good=good, now=now)

    def health(self, now: Optional[float] = None) -> Dict[str, object]:
        """Evaluate every objective; overall status is the worst observed.

        ``no_data`` objectives never drag a healthy report down — the
        overall verdict is the worst status among objectives *with* data,
        and ``no_data`` only when nothing has recorded anything.
        """
        objectives = [slo.evaluate(now=now) for slo in self._slos.values()]
        with_data = [o for o in objectives if o["status"] != "no_data"]
        if with_data:
            overall = max(with_data,
                          key=lambda o: _STATUS_RANK[o["status"]])["status"]
        else:
            overall = "no_data"
        return {"status": overall, "objectives": objectives}


def default_service_objectives() -> Tuple[SLOConfig, ...]:
    """The serving catalog (documented in docs/observability.md).

    Thresholds fit the coalesced CPU service: queries ride fused
    micro-batches (tens of ms under load), upserts serialize on the store
    lock and scan more pairs, and queue saturation above 0.8 means
    backpressure is imminent.
    """
    return (
        SLOConfig("serve_query_latency", "latency_quantile",
                  target=0.95, threshold=0.250),
        SLOConfig("serve_upsert_latency", "latency_quantile",
                  target=0.95, threshold=0.500),
        SLOConfig("serve_error_rate", "error_rate", target=0.999),
        SLOConfig("coalescer_queue_saturation", "queue_saturation",
                  target=0.99, threshold=0.8),
        # Recorded by the storage engine's fsync listener when the service
        # runs over repro.storage (durable mode); no_data otherwise, which
        # never drags health down.
        SLOConfig("wal_fsync_latency", "latency_quantile",
                  target=0.95, threshold=0.025),
    )


def format_health(report: Dict[str, object], uptime: Optional[float] = None) -> str:
    """Render a ``health()`` report as the ``serve --health`` text block."""
    lines = [f"service health: {str(report['status']).upper()}"
             + (f"  (uptime {uptime:.1f}s)" if uptime is not None else "")]
    header = (f"  {'objective':<28} {'kind':<18} {'status':<9} "
              f"{'short burn':>10} {'long burn':>10}  detail")
    lines.append(header)
    for objective in report["objectives"]:  # type: ignore[union-attr]
        windows = list(objective["windows"].values())
        short, long = windows[0], windows[-1]
        if objective["kind"] == "latency_quantile":
            observed = long.get("observed_quantile")
            quantile = f"p{objective['target'] * 100:g}"
            detail = (f"{quantile} {observed * 1000.0:.1f} ms vs "
                      f"{objective['threshold'] * 1000.0:.1f} ms"
                      if observed is not None else "no samples")
        elif objective["kind"] == "error_rate":
            detail = (f"{int(long['total'] - long['good'])} errors / "
                      f"{int(long['total'])} requests")
        else:
            detail = (f"good ratio {long['good_ratio']:.3f} at "
                      f"threshold {objective['threshold']:g}")
        lines.append(f"  {objective['name']:<28} {objective['kind']:<18} "
                     f"{objective['status']:<9} {short['burn_rate']:>10.2f} "
                     f"{long['burn_rate']:>10.2f}  {detail}")
    return "\n".join(lines)
