"""repro.obs — process-wide metrics, span tracing, and telemetry export.

The one observability layer shared by the batch pipeline, the online serve
path, and the trainer.  Three pieces:

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges and fixed-bucket
  histograms with labeled series, a thread-safe registry, ``snapshot()`` and
  Prometheus-style ``exposition()``;
* **tracing** (:mod:`repro.obs.tracing`) — ``trace("stage", **attrs)``
  context manager building nested wall/CPU-timed span trees, one per
  pipeline run / serve request / training epoch;
* **export** (:mod:`repro.obs.export`) — JSONL dump/load of a whole
  telemetry session, rendered by ``python -m repro.obs``.

Telemetry is **disabled by default** and zero-cost while off: instrumented
code sees no-op instruments and no-op spans.  Turn it on for a scope::

    import repro.obs as obs

    with obs.telemetry() as session:
        result = pipeline.run(records)
    obs.write_export("run.jsonl", registry=session.registry,
                     collector=session.collector)

or process-wide with :func:`enable` / :func:`disable`.  Instrumented modules
import this package; this package imports only stdlib + numpy, so it can
never participate in an import cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from . import stats
from .export import (EXPORT_SCHEMA_VERSION, ExportError,
                     SUPPORTED_EXPORT_SCHEMAS, load_export, write_export)
from .merge import (TelemetryPayload, capture_payload, merge_metric_entries,
                    merge_payload)
from .metrics import (BoundHandles, Counter, DEFAULT_LATENCY_BUCKETS,
                      DEFAULT_SIZE_BUCKETS, Gauge, Histogram, MetricsRegistry,
                      NOOP_INSTRUMENT, active_registry, counter, gauge,
                      histogram, set_active_registry, valid_metric_name)
from .slo import (SLO, SLOConfig, SLOMonitor, default_service_objectives,
                  format_health, worst_status)
from .timeline import render_timeline, render_timelines, timeline_roots
from .tracing import (NOOP_SPAN, Span, TraceCollector, active_collector,
                      current_span, detached_stack, set_active_collector,
                      trace)

__all__ = [
    "stats",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "BoundHandles",
    "NOOP_INSTRUMENT", "active_registry", "counter", "gauge", "histogram",
    "valid_metric_name", "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    # tracing
    "Span", "TraceCollector", "NOOP_SPAN", "trace", "current_span",
    "active_collector", "detached_stack",
    # export
    "write_export", "load_export", "ExportError",
    "EXPORT_SCHEMA_VERSION", "SUPPORTED_EXPORT_SCHEMAS",
    # merge
    "TelemetryPayload", "capture_payload", "merge_metric_entries",
    "merge_payload",
    # slo
    "SLO", "SLOConfig", "SLOMonitor", "default_service_objectives",
    "format_health", "worst_status",
    # timeline
    "render_timeline", "render_timelines", "timeline_roots",
    # lifecycle
    "TelemetrySession", "enable", "disable", "enabled", "telemetry",
]


@dataclass(frozen=True)
class TelemetrySession:
    """The registry + collector pair one :func:`enable` call installed."""

    registry: MetricsRegistry
    collector: TraceCollector


def enable(max_trace_roots: int = 256) -> TelemetrySession:
    """Turn telemetry on process-wide (fresh registry + collector).

    Idempotent in spirit but not in state: every call installs a *new*
    registry/collector pair, dropping references to the previous ones.  Use
    :func:`telemetry` for scoped enablement that restores prior state.
    """
    session = TelemetrySession(registry=MetricsRegistry(),
                               collector=TraceCollector(max_roots=max_trace_roots))
    set_active_registry(session.registry)
    set_active_collector(session.collector)
    return session


def disable() -> None:
    """Turn telemetry off process-wide (instruments become no-ops)."""
    set_active_registry(None)
    set_active_collector(None)


def enabled() -> bool:
    """True while a registry is active."""
    return active_registry() is not None


@contextmanager
def telemetry(max_trace_roots: int = 256) -> Iterator[TelemetrySession]:
    """Enable telemetry for a ``with`` block, restoring prior state after.

    Yields the :class:`TelemetrySession`, whose registry/collector stay
    readable (for export or assertions) after the block exits — only the
    *active* state is restored, which is what the overhead bench relies on
    to interleave enabled and disabled rounds.
    """
    session = TelemetrySession(registry=MetricsRegistry(),
                               collector=TraceCollector(max_roots=max_trace_roots))
    previous_registry = set_active_registry(session.registry)
    previous_collector = set_active_collector(session.collector)
    try:
        yield session
    finally:
        set_active_registry(previous_registry)
        set_active_collector(previous_collector)
