"""ASCII Gantt timelines from span trees: who ran when, for how long.

The trace outline (:func:`repro.obs.dashboard.render_trace_tree`) answers
"how long did each span take"; the timeline answers the *concurrency*
question — did the shard workers actually overlap, which shard straggled,
where is the driver-side gap.  Each span becomes one row whose bar is
positioned by its wall-clock ``started_at`` offset from the root and sized
by its ``seconds``, so a balanced 4-worker run shows four stacked bars of
equal length and a skewed one shows the straggler at a glance.

Spans from forked workers carry ``started_at`` stamps from ``time.time()``
in their own process; those clocks are comparable on one machine, which is
all the sharded driver/worker topology needs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["render_timeline", "render_timelines", "timeline_roots"]

_BAR_WIDTH = 48
_LABEL_WIDTH = 30


def _contains(node: Mapping[str, object], name: str) -> bool:
    if node.get("name") == name:
        return True
    return any(_contains(child, name) for child in node.get("children") or ())


def timeline_roots(traces: Sequence[Mapping[str, object]],
                   max_roots: int = 3) -> List[Mapping[str, object]]:
    """Pick the root trees worth a timeline, newest first.

    Preference order: roots containing ``sharded.worker`` spans (the
    per-shard story the timeline exists for), then pipeline-shaped roots
    (``sharded.run`` / ``pipeline.run``), then simply the longest root.  An
    export from ``--export`` also carries training-epoch and per-request
    roots; rendering hundreds of those as Gantts would bury the answer.
    """
    roots = list(traces)
    if not roots:
        return []
    sharded = [r for r in roots if _contains(r, "sharded.worker")]
    if sharded:
        return sharded[-max_roots:][::-1]
    pipelines = [r for r in roots
                 if r.get("name") in ("sharded.run", "pipeline.run")]
    if pipelines:
        return pipelines[-max_roots:][::-1]
    return [max(roots, key=lambda r: float(r.get("seconds", 0.0)))]


def _label(node: Mapping[str, object], depth: int) -> str:
    name = str(node.get("name", ""))
    attrs = node.get("attributes") or {}
    if "shard" in attrs:
        name = f"{name}[shard={attrs['shard']}]"
    text = "  " * depth + name
    if len(text) > _LABEL_WIDTH:
        text = text[:_LABEL_WIDTH - 1] + "…"
    return text


def render_timeline(root: Mapping[str, object],
                    width: int = _BAR_WIDTH,
                    max_depth: int = 4) -> str:
    """One span tree as an ASCII Gantt (one row per span, preorder).

    The time axis spans the root's wall-clock extent; every row's bar is
    clamped into it (a child that started before the root's ``started_at``
    — clock skew — clamps to the left edge rather than disappearing).
    """
    t0 = float(root.get("started_at", 0.0))
    total = max(float(root.get("seconds", 0.0)), 1e-9)
    lines = [f"{str(root.get('name', ''))}  — total {total:.4f}s "
             f"(one row per span; bar = wall-clock extent)"]
    lines.append(f"  {'span':<{_LABEL_WIDTH}} {'start':>8} {'wall':>9}  "
                 f"|{'-' * width}|")

    def walk(node: Mapping[str, object], depth: int) -> None:
        offset = float(node.get("started_at", t0)) - t0
        seconds = float(node.get("seconds", 0.0))
        left = min(max(int(round(offset / total * width)), 0), width - 1)
        length = max(int(round(seconds / total * width)), 1)
        length = min(length, width - left)
        bar = " " * left + "#" * length + " " * (width - left - length)
        lines.append(f"  {_label(node, depth):<{_LABEL_WIDTH}} "
                     f"{max(offset, 0.0):>7.3f}s {seconds:>8.4f}s  |{bar}|")
        if depth + 1 < max_depth:
            for child in node.get("children") or ():
                walk(child, depth + 1)
        elif node.get("children"):
            lines.append(f"  {'  ' * (depth + 1)}… "
                         f"({len(node['children'])} deeper spans elided)")

    walk(root, 0)
    return "\n".join(lines)


def render_timelines(traces: Sequence[Mapping[str, object]],
                     width: int = _BAR_WIDTH,
                     max_roots: int = 3) -> str:
    """Timelines for every root :func:`timeline_roots` selects."""
    roots = timeline_roots(traces, max_roots=max_roots)
    if not roots:
        return "(no trace trees to render)"
    return "\n\n".join(render_timeline(root, width=width) for root in roots)
