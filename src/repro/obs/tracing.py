"""Span tracing: nested wall/CPU-timed spans collected into trace trees.

A *span* covers one timed region (``trace("pipeline.run")``, a serve
request, a training epoch).  Spans nest through a thread-local stack, so a
``trace(...)`` opened while another is active becomes its child; when the
outermost span of a thread closes, the finished tree is handed to the
active :class:`TraceCollector`, a bounded deque of recent roots.

Like the metrics side, tracing is zero-cost-when-disabled: while no
collector is active, :func:`trace` yields a shared no-op span and touches
neither the clock nor the stack.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "TraceCollector", "NOOP_SPAN", "trace",
           "active_collector", "set_active_collector", "current_span",
           "detached_stack"]


class Span:
    """One timed region: name, attributes, wall/CPU seconds, children."""

    __slots__ = ("name", "attributes", "started_at", "seconds", "cpu_seconds",
                 "children", "_wall_start", "_cpu_start")

    def __init__(self, name: str, attributes: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.started_at = time.time()
        self.seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: List["Span"] = []
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the open span."""
        self.attributes[key] = value

    def finish(self) -> None:
        self.seconds = time.perf_counter() - self._wall_start
        self.cpu_seconds = time.process_time() - self._cpu_start

    def to_dict(self) -> Dict[str, object]:
        """The span tree as plain JSON-able dicts (the export format)."""
        node: Dict[str, object] = {
            "name": self.name,
            "started_at": self.started_at,
            "seconds": self.seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    @classmethod
    def from_dict(cls, node: Dict[str, object]) -> "Span":
        """Rebuild a finished span tree from its :meth:`to_dict` form.

        The inverse of :meth:`to_dict` up to float round-tripping — used to
        adopt span trees shipped across a process boundary (see
        :mod:`repro.obs.merge`).  The rebuilt span is already finished: its
        clocks are not re-armed.
        """
        span = cls.__new__(cls)
        span.name = str(node["name"])
        span.attributes = dict(node.get("attributes") or {})  # type: ignore[arg-type]
        span.started_at = float(node.get("started_at", 0.0))  # type: ignore[arg-type]
        span.seconds = float(node.get("seconds", 0.0))  # type: ignore[arg-type]
        span.cpu_seconds = float(node.get("cpu_seconds", 0.0))  # type: ignore[arg-type]
        span.children = [cls.from_dict(child)
                         for child in node.get("children") or ()]  # type: ignore[union-attr]
        span._wall_start = 0.0
        span._cpu_start = 0.0
        return span


class _NoopSpan:
    """Shared do-nothing span yielded while tracing is disabled."""

    __slots__ = ()
    name = ""
    seconds = 0.0
    cpu_seconds = 0.0
    children: List[Span] = []
    attributes: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceCollector:
    """Bounded store of recently finished root spans (newest last)."""

    def __init__(self, max_roots: int = 256) -> None:
        if max_roots <= 0:
            raise ValueError(f"max_roots must be positive, got {max_roots}")
        self._lock = threading.Lock()
        self._roots: Deque[Span] = deque(maxlen=max_roots)

    def add_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)

    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._roots)


_ACTIVE: Optional[TraceCollector] = None
_STACKS = threading.local()


def active_collector() -> Optional[TraceCollector]:
    """The currently enabled collector, or ``None`` while tracing is off."""
    return _ACTIVE


def set_active_collector(collector: Optional[TraceCollector]) -> Optional[TraceCollector]:
    """Install (or clear) the active collector; returns the previous one.
    Use :func:`repro.obs.enable` / :func:`repro.obs.disable` normally."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    return previous


def _stack() -> List[Span]:
    stack = getattr(_STACKS, "spans", None)
    if stack is None:
        stack = _STACKS.spans = []
    return stack


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    if _ACTIVE is None:
        return None
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def detached_stack() -> Iterator[None]:
    """Run a block on a fresh span stack, restoring the caller's stack after.

    The span stack is thread-local and shared by every :func:`trace` on the
    thread, so a worker that installs a fresh telemetry scope *while the
    driver has an open span on the same thread* (the in-process sharded
    path) would see its root span swallowed as a child of the driver's span.
    Detaching swaps in an empty stack for the block: spans opened inside
    form their own trees and land in whatever collector is active at their
    entry.
    """
    previous = getattr(_STACKS, "spans", None)
    _STACKS.spans = []
    try:
        yield
    finally:
        _STACKS.spans = previous if previous is not None else []


@contextmanager
def trace(name: str, **attributes: object) -> Iterator[Span]:
    """Open a span named ``name`` for the duration of the ``with`` block.

    Nested calls on the same thread build a tree; the outermost span is
    handed to the active collector when it closes.  The collector captured
    at entry is the one that receives the root, so a tree opened inside
    :func:`repro.obs.telemetry` lands in that context's collector even if
    telemetry toggles mid-span.  Exceptions propagate; the span is still
    finished and recorded, tagged with ``error`` = exception class name.
    """
    collector = _ACTIVE
    if collector is None:
        yield NOOP_SPAN  # type: ignore[misc]
        return
    span = Span(name, attributes)
    stack = _stack()
    stack.append(span)
    try:
        yield span
    except BaseException as exc:
        span.set("error", type(exc).__name__)
        raise
    finally:
        span.finish()
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            collector.add_root(span)
