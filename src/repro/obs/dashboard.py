"""Plain-text telemetry dashboard: metrics tables + trace trees.

Renders either live state (the active registry/collector) or a loaded
export into the fixed-width text the ``python -m repro.obs`` CLI prints.
Pure string building — no terminal control here beyond what the CLI adds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .metrics import MetricsRegistry, active_registry
from .stats import histogram_percentiles
from .tracing import TraceCollector, active_collector

__all__ = ["render_dashboard", "render_metrics", "render_trace_tree"]


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".6g")


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{key}={value}"
                          for key, value in sorted(labels.items())) + "}"


def render_metrics(metrics: Sequence[Mapping[str, object]]) -> str:
    """Metric series as aligned text, grouped counters/gauges/histograms."""
    counters: List[str] = []
    gauges: List[str] = []
    histograms: List[str] = []
    for entry in metrics:
        name = f"{entry['name']}{_label_text(entry.get('labels') or {})}"
        kind = entry.get("kind")
        if kind == "counter":
            counters.append(f"  {name:<52} {_format_value(entry['value']):>12}")
        elif kind == "gauge":
            gauges.append(f"  {name:<52} {_format_value(entry['value']):>12}"
                          f"  (max {_format_value(entry.get('max', entry['value']))})")
        elif kind == "histogram":
            count = int(entry["count"])
            buckets = entry.get("buckets") or []
            bounds = [bound for bound, _ in buckets if not isinstance(bound, str)]
            counts = [bucket_count for _, bucket_count in buckets]
            pcts = histogram_percentiles(bounds, counts)
            mean = (float(entry["sum"]) / count) if count else 0.0
            histograms.append(
                f"  {name:<52} n={count:<8} mean={mean:<11.6g} "
                f"p50={pcts['p50']:<11.6g} p95={pcts['p95']:<11.6g} "
                f"p99={pcts['p99']:.6g}")
    sections: List[str] = []
    if counters:
        sections.append("counters:\n" + "\n".join(counters))
    if gauges:
        sections.append("gauges:\n" + "\n".join(gauges))
    if histograms:
        sections.append("histograms (percentiles estimated from buckets):\n"
                        + "\n".join(histograms))
    if not sections:
        sections.append("(no metrics recorded)")
    return "\n".join(sections)


def render_trace_tree(root: Mapping[str, object], max_depth: int = 6) -> str:
    """One root span tree as an indented text outline."""
    lines: List[str] = []

    def walk(node: Mapping[str, object], depth: int) -> None:
        indent = "  " * depth
        attrs = node.get("attributes") or {}
        attr_text = ("  " + " ".join(f"{key}={value}"
                                     for key, value in sorted(attrs.items()))
                     if attrs else "")
        lines.append(f"{indent}{node['name']:<{max(36 - 2 * depth, 8)}} "
                     f"wall={float(node['seconds']):.4f}s "
                     f"cpu={float(node['cpu_seconds']):.4f}s{attr_text}")
        if depth + 1 < max_depth:
            for child in node.get("children") or []:
                walk(child, depth + 1)
        elif node.get("children"):
            lines.append(f"{'  ' * (depth + 1)}... "
                         f"({len(node['children'])} deeper spans elided)")

    walk(root, 0)
    return "\n".join(lines)


def render_dashboard(metrics: Optional[Sequence[Mapping[str, object]]] = None,
                     traces: Optional[Sequence[Mapping[str, object]]] = None,
                     title: str = "repro.obs telemetry",
                     max_traces: int = 5) -> str:
    """The full dashboard: header, metrics section, most recent traces.

    With no arguments, renders the live active registry/collector (empty
    sections when telemetry is disabled).
    """
    if metrics is None:
        registry: Optional[MetricsRegistry] = active_registry()
        metrics = registry.snapshot() if registry is not None else []
    if traces is None:
        collector: Optional[TraceCollector] = active_collector()
        traces = [root.to_dict() for root in collector.roots()] if collector else []

    width = 78
    parts: List[str] = ["=" * width, title.center(width), "=" * width,
                        render_metrics(metrics)]
    if traces:
        shown = list(traces)[-max_traces:]
        parts.append("-" * width)
        parts.append(f"traces ({len(traces)} recorded, newest "
                     f"{len(shown)} shown):")
        for root in shown:
            parts.append(render_trace_tree(root))
    parts.append("=" * width)
    return "\n".join(parts)
