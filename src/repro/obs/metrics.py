"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the recording half of :mod:`repro.obs`.  Instrument names
follow the ``subsystem_name_unit`` convention (``store_upsert_seconds``,
``cache_hits_total``); a *family* is one name plus its kind and help string,
and each distinct label set under a family is one *series* holding its own
lock — concurrent recorders on different series never contend, and recording
on one series is a single short critical section.

Telemetry is **off by default**: :func:`active_registry` returns ``None`` and
the module-level helpers (:func:`counter`, :func:`gauge`, :func:`histogram`)
hand back a shared no-op instrument whose methods do nothing, so instrumented
code pays only a global read and a method call when disabled.  Hot paths that
cannot even afford that keep a :class:`BoundHandles` and skip instrumentation
entirely while it resolves to ``None``.

``snapshot()`` returns the whole registry as plain JSON-able dicts (the
export and dashboard format); ``exposition()`` renders the standard
Prometheus text format for scrape-style consumers.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "BoundHandles",
    "NOOP_INSTRUMENT", "active_registry", "set_active_registry",
    "counter", "gauge", "histogram",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    "METRIC_NAME_PATTERN", "METRIC_SUBSYSTEMS", "METRIC_UNITS",
    "valid_metric_name",
]

# Latency buckets in seconds: sub-millisecond serving up to slow batch stages.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

# Size buckets (pairs per batch, records per bucket, ...): powers of two.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

# The repo-wide naming convention, asserted by a lint test: a known subsystem
# prefix, a descriptive middle, and a unit suffix.
METRIC_SUBSYSTEMS = ("pipeline", "index", "serve", "store", "storage",
                     "coalescer", "cache", "infer", "training", "bench",
                     "obs", "resilience")
METRIC_UNITS = ("total", "seconds", "bytes", "pairs", "records", "entries",
                "ratio", "count", "ops")
METRIC_NAME_PATTERN = re.compile(
    r"^(%s)_[a-z0-9]+(?:_[a-z0-9]+)*_(%s)$"
    % ("|".join(METRIC_SUBSYSTEMS), "|".join(METRIC_UNITS)))

_BASIC_NAME = re.compile(r"^[a-z][a-z0-9_]*$")
_LABEL_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


def valid_metric_name(name: str) -> bool:
    """True when ``name`` follows the ``subsystem_name_unit`` convention."""
    return METRIC_NAME_PATTERN.match(name) is not None


LabelPairs = Tuple[Tuple[str, str], ...]


def _normalize_labels(labels: Optional[Mapping[str, object]]) -> LabelPairs:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_NAME.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """Monotonically increasing count for one labeled series."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}

    def merge_snapshot(self, entry: Mapping[str, object]) -> None:
        """Fold another counter's snapshot into this one (values sum)."""
        self.inc(float(entry.get("value", 0.0)))  # type: ignore[arg-type]


class Gauge:
    """A value that can go up and down; the high watermark is kept alongside.

    ``set_max`` is the watermark-style update (only ever raises the value),
    used for e.g. queue-depth high watermarks.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value", "_max")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is currently lower."""
        with self._lock:
            if value > self._value:
                self._value = float(value)
            if value > self._max:
                self._max = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max_value(self) -> float:
        """The largest value this gauge ever held (high watermark)."""
        with self._lock:
            return self._max

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"value": self._value, "max": self._max}

    def merge_snapshot(self, entry: Mapping[str, object]) -> None:
        """Fold another gauge's snapshot into this one (watermark max).

        Across processes a gauge has no meaningful sum ("workers of the last
        run" from two workers does not add), so merging keeps the maximum of
        the values and the maximum of the high watermarks — the conservative
        reading for the queue-depth/watermark gauges merge exists for.
        """
        value = float(entry.get("value", 0.0))  # type: ignore[arg-type]
        peak = float(entry.get("max", value))  # type: ignore[arg-type]
        with self._lock:
            if value > self._value:
                self._value = value
            if peak > self._max:
                self._max = peak


class Histogram:
    """Fixed-bucket histogram: cumulative-style buckets plus sum and count.

    ``buckets`` are the finite upper bounds; one implicit ``+Inf`` bucket
    catches the rest.  ``observe`` is one bisect plus three updates under the
    series lock.  ``sum`` accumulates observations in arrival order, so for a
    single-threaded recorder it is bit-identical to ``sum(values)`` over the
    same sequence — the property the ``TrainingHistory`` migration relies on.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum",
                 "_count", "_min", "_max")

    def __init__(self, name: str, labels: LabelPairs = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must be strictly increasing "
                             f"and non-empty, got {buckets!r}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": [[bound, count] for bound, count
                            in zip(self.bounds, self._counts)]
                           + [["+Inf", self._counts[-1]]],
            }

    def merge_snapshot(self, entry: Mapping[str, object]) -> None:
        """Fold another histogram's snapshot into this one, bucket-wise.

        Both sides must share the same fixed bucket bounds (mismatched
        layouts cannot be added without losing resolution — raises
        ``ValueError``).  Counts add per bucket, ``sum``/``count`` add, and
        ``min``/``max`` take the extrema; an empty snapshot is a no-op so
        min/max are never polluted by the 0.0 placeholders.
        """
        buckets = list(entry.get("buckets") or ())  # type: ignore[arg-type]
        bounds = tuple(float(bound) for bound, _ in buckets
                       if not isinstance(bound, str))
        counts = [int(count) for _, count in buckets]
        if bounds != self.bounds or len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with bucket "
                f"bounds {bounds!r} into bounds {self.bounds!r}")
        count = int(entry.get("count", sum(counts)))  # type: ignore[arg-type]
        if count == 0:
            return
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._sum += float(entry.get("sum", 0.0))  # type: ignore[arg-type]
            self._count += count
            low = float(entry.get("min", float("inf")))  # type: ignore[arg-type]
            high = float(entry.get("max", float("-inf")))  # type: ignore[arg-type]
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high


class _NoopInstrument:
    """Shared do-nothing stand-in returned while telemetry is disabled."""

    __slots__ = ()
    kind = "noop"
    name = ""
    labels: LabelPairs = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


NOOP_INSTRUMENT = _NoopInstrument()


class _Family:
    """One metric name: kind, help text, bucket layout, series per label set."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help: str,
                 buckets: Optional[Tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: Dict[LabelPairs, object] = {}


class MetricsRegistry:
    """Thread-safe home of every metric family and its labeled series.

    Registration (``counter``/``gauge``/``histogram``) is idempotent: the
    same name + labels always returns the same instrument, so call sites can
    simply re-request their handles.  Re-registering a name as a different
    kind (or a histogram with different buckets) raises — one name means one
    metric, process-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        if not _BASIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r} (lowercase "
                             f"[a-z0-9_], starting with a letter)")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(f"metric {name!r} is already registered as a "
                             f"{family.kind}, not a {kind}")
        if kind == "histogram" and buckets is not None and family.buckets != buckets:
            raise ValueError(f"histogram {name!r} is already registered with "
                             f"different buckets")
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, object]] = None) -> Counter:
        key = _normalize_labels(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Counter(name, key)
            return series  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, object]] = None) -> Gauge:
        key = _normalize_labels(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Gauge(name, key)
            return series  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, object]] = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        key = _normalize_labels(labels)
        bounds = tuple(float(bound) for bound in buckets)
        with self._lock:
            family = self._family(name, "histogram", help, bounds)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Histogram(name, key, bounds)
            return series  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Every registered family name, sorted."""
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> List[Dict[str, object]]:
        """Every series as a JSON-able dict (the export/dashboard format)."""
        with self._lock:
            families = [(family, list(family.series.items()))
                        for family in self._families.values()]
        entries: List[Dict[str, object]] = []
        for family, series_items in sorted(families, key=lambda item: item[0].name):
            for labels, series in sorted(series_items, key=lambda item: item[0]):
                entry: Dict[str, object] = {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": dict(labels),
                }
                entry.update(series.snapshot())  # type: ignore[attr-defined]
                entries.append(entry)
        return entries

    def exposition(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for entry in self.snapshot():
            name = entry["name"]
            if not lines or not lines[-1].startswith(f"# TYPE {name} "):
                if entry["help"]:
                    lines.append(f"# HELP {name} {entry['help']}")
                lines.append(f"# TYPE {name} {entry['kind']}")
            label_text = _format_labels(entry["labels"])  # type: ignore[arg-type]
            if entry["kind"] == "histogram":
                cumulative = 0
                for bound, count in entry["buckets"]:  # type: ignore[union-attr]
                    cumulative += count
                    bucket_labels = dict(entry["labels"])  # type: ignore[arg-type]
                    bucket_labels["le"] = (bound if isinstance(bound, str)
                                           else format(bound, "g"))
                    lines.append(f"{name}_bucket{_format_labels(bucket_labels)} "
                                 f"{cumulative}")
                lines.append(f"{name}_sum{label_text} {entry['sum']:g}")
                lines.append(f"{name}_count{label_text} {entry['count']}")
            else:
                lines.append(f"{name}{label_text} {entry['value']:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


# --------------------------------------------------------------------------- #
# Active-registry plumbing (the on/off switch lives in repro.obs.__init__)
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The currently enabled registry, or ``None`` while telemetry is off."""
    return _ACTIVE


def set_active_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install (or clear, with ``None``) the active registry; returns the
    previous one.  Use :func:`repro.obs.enable` / :func:`repro.obs.disable`
    unless you are wiring a custom lifecycle."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def counter(name: str, help: str = "",
            labels: Optional[Mapping[str, object]] = None):
    """The named counter from the active registry, or a no-op when disabled."""
    registry = _ACTIVE
    if registry is None:
        return NOOP_INSTRUMENT
    return registry.counter(name, help, labels)


def gauge(name: str, help: str = "",
          labels: Optional[Mapping[str, object]] = None):
    """The named gauge from the active registry, or a no-op when disabled."""
    registry = _ACTIVE
    if registry is None:
        return NOOP_INSTRUMENT
    return registry.gauge(name, help, labels)


def histogram(name: str, help: str = "",
              labels: Optional[Mapping[str, object]] = None,
              buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
    """The named histogram from the active registry, or a no-op when disabled."""
    registry = _ACTIVE
    if registry is None:
        return NOOP_INSTRUMENT
    return registry.histogram(name, help, labels, buckets)


class BoundHandles:
    """Cache of instrument handles that follows the active registry.

    Hot paths (the encoding cache, the coalescer) cannot afford a registry
    lookup per event; they hold one ``BoundHandles`` whose ``get()`` is a
    single identity check in the steady state.  The ``binder`` callback maps
    a registry to whatever handle bundle the call site wants (a tuple, a
    namedtuple, ...); ``get()`` returns ``None`` while telemetry is disabled,
    so the caller's fast path is ``handles = self._obs.get(); if handles:``.

    Rebinding races are benign: instruments are registry-level singletons, so
    two threads that rebind concurrently end up with the same handles.
    """

    __slots__ = ("_binder", "_registry", "_handles")
    _UNBOUND = object()

    def __init__(self, binder: Callable[[MetricsRegistry], object]) -> None:
        self._binder = binder
        self._registry: object = BoundHandles._UNBOUND
        self._handles: Optional[object] = None

    def get(self) -> Optional[object]:
        registry = _ACTIVE
        if registry is not self._registry:
            self._handles = None if registry is None else self._binder(registry)
            self._registry = registry
        return self._handles
