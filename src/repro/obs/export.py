"""JSONL export / import of a telemetry session.

One export file carries the whole story of a run: a ``meta`` line, one line
per metric series, and one line per trace tree.  The format is line-oriented
JSON so exports stream, diff, and grep well:

``{"type": "meta", "schema": 2, "created_at": ..., "argv": [...]}``
    First line; identifies the producing process and the schema version.
``{"type": "metric", "kind": "counter"|"gauge", "name", "labels", "value", ...}``
    One line per counter/gauge series (gauges also carry ``max``).
``{"type": "metric", "kind": "histogram", "name", "labels", "count", "sum",
"min", "max", "buckets": [[le, count], ...]}``
    One line per histogram series; the final bucket bound is the string
    ``"+Inf"``.
``{"type": "trace", "root": {span tree}}``
    One line per finished root span (see :meth:`repro.obs.Span.to_dict`).

:func:`write_export` snapshots the active (or given) registry + collector;
:func:`load_export` reads a file back into plain dicts for the dashboard and
the ``python -m repro.obs`` CLI.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import MetricsRegistry, active_registry
from .tracing import TraceCollector, active_collector

__all__ = ["write_export", "load_export", "ExportError",
           "EXPORT_SCHEMA_VERSION", "SUPPORTED_EXPORT_SCHEMAS"]

# Version 1: the original meta/metric/trace lines (no schema field).
# Version 2: meta carries "schema"; traces may include merged worker spans.
EXPORT_SCHEMA_VERSION = 2
SUPPORTED_EXPORT_SCHEMAS = (1, 2)


class ExportError(ValueError):
    """Raised when an export file is malformed, empty, or from an
    unsupported schema version."""


def write_export(path: Union[str, Path],
                 registry: Optional[MetricsRegistry] = None,
                 collector: Optional[TraceCollector] = None) -> Path:
    """Write the current telemetry state to ``path`` as JSONL.

    Defaults to the active registry/collector; either may be absent (an
    export with metrics but no traces is fine, and vice versa).  Writing
    with telemetry fully disabled still produces a valid file with just the
    ``meta`` line.
    """
    registry = registry if registry is not None else active_registry()
    collector = collector if collector is not None else active_collector()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        meta = {"type": "meta", "schema": EXPORT_SCHEMA_VERSION,
                "created_at": time.time(), "argv": list(sys.argv)}
        handle.write(json.dumps(meta) + "\n")
        if registry is not None:
            for entry in registry.snapshot():
                line: Dict[str, object] = {"type": "metric"}
                line.update(entry)
                handle.write(json.dumps(line) + "\n")
        if collector is not None:
            for root in collector.roots():
                handle.write(json.dumps({"type": "trace",
                                         "root": root.to_dict()}) + "\n")
    return path


def load_export(path: Union[str, Path]) -> Dict[str, object]:
    """Read an export file back as ``{"meta", "metrics", "traces"}``.

    ``metrics`` is a list of series dicts (the registry snapshot format),
    ``traces`` a list of root span trees.  Unknown line types are ignored so
    the format can grow; malformed JSON raises :class:`ExportError` with the
    offending line number.  The meta line's ``schema`` field (absent = 1)
    must be a supported version — an unknown version raises
    :class:`ExportError` immediately rather than failing deep inside the
    dashboard on a shape it cannot know about.
    """
    path = Path(path)
    meta: Dict[str, object] = {}
    metrics: List[Dict[str, object]] = []
    traces: List[Dict[str, object]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ExportError(f"{path}:{line_number}: not valid JSON "
                                  f"({exc.msg})") from exc
            kind = line.get("type")
            if kind == "meta":
                schema = line.get("schema", 1)
                if not isinstance(schema, int) or schema not in SUPPORTED_EXPORT_SCHEMAS:
                    raise ExportError(
                        f"{path}:{line_number}: export schema version "
                        f"{schema!r} is not supported (this build reads "
                        f"{SUPPORTED_EXPORT_SCHEMAS}); re-export with a "
                        f"matching repro version")
                meta = line
            elif kind == "metric":
                metrics.append(line)
            elif kind == "trace":
                traces.append(line["root"])
    if not meta and not metrics and not traces:
        raise ExportError(f"{path}: empty export (no meta/metric/trace lines)")
    return {"meta": meta, "metrics": metrics, "traces": traces}
