"""Shared statistics helpers: percentiles, Gini coefficient, bucket skew.

This is the one home for the percentile math that ``serve/loadgen.py`` and
``bench/runner.py`` previously each implemented, plus the skew measures
(Gini over bucket sizes, top-k hottest buckets) the blocking indexes report.
Everything here is numpy-only and side-effect free.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["PERCENTILE_POINTS", "percentiles", "histogram_percentiles",
           "gini", "top_k_buckets", "bucket_skew"]

PERCENTILE_POINTS = (50, 95, 99)


def percentiles(samples: Sequence[float],
                points: Sequence[int] = PERCENTILE_POINTS) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a sample list.

    Empty input yields zeros, so reports stay JSON-clean at smoke scales.
    (This is the exact behaviour ``serve.loadgen.latency_percentiles`` has
    always had; that function now delegates here.)
    """
    if not len(samples):
        return {f"p{point}": 0.0 for point in points}
    values = np.percentile(np.asarray(samples, dtype=np.float64), list(points))
    return {f"p{point}": float(value) for point, value in zip(points, values)}


def histogram_percentiles(bounds: Sequence[float], counts: Sequence[int],
                          points: Sequence[int] = PERCENTILE_POINTS) -> Dict[str, float]:
    """Percentiles estimated from fixed-bucket histogram counts.

    ``bounds`` are the finite upper bucket bounds and ``counts`` the per-bucket
    counts, with one extra trailing count for the +Inf bucket (the layout of
    :meth:`repro.obs.Histogram.snapshot`).  Within a bucket the estimate
    interpolates linearly between the bucket's bounds; the +Inf bucket clamps
    to its lower bound.  Exact percentiles need raw samples — this is for
    dashboards reading exported histograms.
    """
    total = int(sum(counts))
    if total == 0:
        return {f"p{point}": 0.0 for point in points}
    lowers = [0.0] + [float(bound) for bound in bounds]
    uppers = [float(bound) for bound in bounds] + [float(bounds[-1]) if bounds else 0.0]
    result: Dict[str, float] = {}
    for point in points:
        rank = total * point / 100.0
        cumulative = 0
        value = uppers[-1]
        for index, count in enumerate(counts):
            if cumulative + count >= rank and count > 0:
                fraction = (rank - cumulative) / count
                value = lowers[index] + fraction * (uppers[index] - lowers[index])
                break
            cumulative += count
        result[f"p{point}"] = float(value)
    return result


def gini(sizes: Sequence[float]) -> float:
    """Gini coefficient of a size distribution, in [0, 1).

    0 means perfectly even buckets; values near 1 mean a few buckets hold
    nearly everything (the skew that serializes partitioned work).  Empty or
    all-zero input yields 0.
    """
    if not len(sizes):
        return 0.0
    values = np.sort(np.asarray(sizes, dtype=np.float64))
    total = float(values.sum())
    if total <= 0.0:
        return 0.0
    n = len(values)
    # Standard rank formulation: G = (2 * sum(i * x_i) / (n * sum(x))) - (n+1)/n
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * float(np.dot(ranks, values)) / (n * total)) - (n + 1.0) / n)


def top_k_buckets(sizes: Mapping[Hashable, int],
                  k: int = 5) -> List[Tuple[str, int]]:
    """The ``k`` largest buckets as ``(str(key), size)``, biggest first.

    Ties break on the stringified key, so the report is deterministic
    regardless of dict iteration order.
    """
    if k <= 0:
        return []
    ranked = sorted(((str(key), int(size)) for key, size in sizes.items()),
                    key=lambda item: (-item[1], item[0]))
    return ranked[:k]


def bucket_skew(sizes: Mapping[Hashable, int], top_k: int = 5) -> Dict[str, object]:
    """Skew summary of one bucketed index: Gini, extremes, hottest buckets."""
    values = list(sizes.values())
    num_records = int(sum(values))
    return {
        "num_buckets": len(values),
        "num_records": num_records,
        "max_bucket_size": int(max(values)) if values else 0,
        "mean_bucket_size": (num_records / len(values)) if values else 0.0,
        "gini": gini(values),
        "hottest": top_k_buckets(sizes, k=top_k),
    }
