"""Shared utilities: deterministic RNG handling, timing, serialisation."""

from .rng import RandomState, spawn_rng
from .serialization import load_json, load_npz, save_json, save_npz
from .timer import Timer
from .validation import require_fraction, require_non_empty, require_positive

__all__ = [
    "RandomState",
    "spawn_rng",
    "Timer",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "require_positive",
    "require_fraction",
    "require_non_empty",
]
