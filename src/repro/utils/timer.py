"""Lightweight wall-clock timing used by the runtime experiments (Fig. 9)."""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch that records named durations.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("train"):
    ...     do_training()
    >>> timer.total("train")  # seconds
    """

    def __init__(self) -> None:
        self._records: Dict[str, List[float]] = {}
        self._active: Dict[str, float] = {}

    class _Span:
        def __init__(self, timer: "Timer", name: str) -> None:
            self._timer = timer
            self._name = name

        def __enter__(self) -> "Timer._Span":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            self._timer._records.setdefault(self._name, []).append(elapsed)

    def measure(self, name: str) -> "Timer._Span":
        """Return a context manager that records a span under ``name``."""
        return Timer._Span(self, name)

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 when absent)."""
        return float(sum(self._records.get(name, [])))

    def mean(self, name: str) -> float:
        """Mean span length for ``name`` (0.0 when absent)."""
        spans = self._records.get(name, [])
        return float(sum(spans) / len(spans)) if spans else 0.0

    def count(self, name: str) -> int:
        """Number of spans recorded under ``name``."""
        return len(self._records.get(name, []))

    def summary(self) -> Dict[str, float]:
        """Return ``{name: total_seconds}`` for every recorded name."""
        return {name: self.total(name) for name in self._records}
