"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Sized

__all__ = ["require_positive", "require_fraction", "require_non_empty"]


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_fraction(value: float, name: str, inclusive: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1] (or (0, 1))."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def require_non_empty(collection: Sized, name: str) -> Sized:
    """Raise ``ValueError`` when ``collection`` is empty."""
    if len(collection) == 0:
        raise ValueError(f"{name} must not be empty")
    return collection
