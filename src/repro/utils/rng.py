"""Deterministic random-number management.

Every stochastic component in the library (data generators, weight
initialisation, batch sampling) draws from an explicitly seeded
``numpy.random.Generator`` so that experiments are reproducible run to run.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomState", "spawn_rng"]

SeedLike = Union[int, np.random.Generator, "RandomState", None]


def spawn_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator or None."""
    if isinstance(seed, RandomState):
        return seed.generator
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomState:
    """A named, forkable source of randomness.

    ``fork(name)`` derives an independent child generator deterministically
    from the parent seed and the child name, so adding a new consumer of
    randomness never perturbs the streams of existing consumers.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed if seed is not None else 0
        self.generator = np.random.default_rng(self.seed)

    def fork(self, name: str) -> np.random.Generator:
        """Derive a child generator keyed by ``name``."""
        child_seed = np.random.SeedSequence([self.seed, _stable_hash(name)])
        return np.random.default_rng(child_seed)

    def integers(self, low: int, high: int) -> int:
        """Draw one integer in ``[low, high)`` from the root generator."""
        return int(self.generator.integers(low, high))

    def __repr__(self) -> str:
        return f"RandomState(seed={self.seed})"


def _stable_hash(text: str) -> int:
    """A process-independent 63-bit hash of ``text`` (python's hash is salted)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for char in text.encode("utf-8"):
        value ^= char
        value = (value * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return value
