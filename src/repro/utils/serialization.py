"""JSON / npz persistence helpers for experiment results and model weights."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = ["save_json", "load_json", "save_npz", "load_npz"]

PathLike = Union[str, Path]


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(data: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise ``data`` to ``path`` as JSON (numpy types handled)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=indent, cls=_NumpyEncoder, sort_keys=True)
    return path


def load_json(path: PathLike) -> Any:
    """Load JSON previously written with :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(arrays: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Save a dict of arrays (e.g. a model ``state_dict``) to a ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load arrays previously written with :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return {key: data[key] for key in data.files}
