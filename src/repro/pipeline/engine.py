"""The end-to-end linkage engine: ingest → block → pair → score → cluster.

:class:`LinkagePipeline` wires the stage objects together, times every stage,
and bundles the outputs (candidates, scores, clusters, per-stage statistics)
into a :class:`PipelineResult` that can be written to disk as JSONL/JSON.

Records are ingested from any iterable in bounded chunks, so the streaming
readers of :mod:`repro.data.storage` plug in directly and the blocking
indexes never require the pair space — only the records — in memory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .. import obs
from ..data.records import Record
from ..infer.predictor import BatchedPredictor
from ..utils.serialization import save_json
from .candidates import CandidateGenerationStage, CandidateResult
from .clustering import ClusteringStage, ClusterResult
from .scoring import ScoredCandidates, ScoringStage

__all__ = ["PipelineConfig", "PipelineResult", "LinkagePipeline"]

STAGE_ORDER = ("ingest", "block", "pair", "score", "cluster")


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs for every pipeline stage.

    ``blocking_attributes=None`` blocks on every attribute present on each
    record; restricting it to the identifying attributes (e.g. name/title)
    reduces candidates at some recall cost.
    """

    blocking_attributes: Optional[Sequence[str]] = None
    num_perm: int = 128
    bands: int = 32
    lsh_max_bucket_size: int = 8
    max_postings: int = 8
    initials_max_bucket_size: int = 16
    min_token_length: int = 3
    cross_source_only: bool = True
    score_threshold: float = 0.5
    source_consistent: bool = True
    scoring_chunk_size: int = 2048
    ingest_chunk_size: int = 2048
    seed: int = 7

    def as_dict(self) -> Dict[str, object]:
        return {
            "blocking_attributes": (list(self.blocking_attributes)
                                    if self.blocking_attributes is not None else None),
            "num_perm": self.num_perm,
            "bands": self.bands,
            "lsh_max_bucket_size": self.lsh_max_bucket_size,
            "max_postings": self.max_postings,
            "initials_max_bucket_size": self.initials_max_bucket_size,
            "min_token_length": self.min_token_length,
            "cross_source_only": self.cross_source_only,
            "score_threshold": self.score_threshold,
            "source_consistent": self.source_consistent,
            "scoring_chunk_size": self.scoring_chunk_size,
            "ingest_chunk_size": self.ingest_chunk_size,
            "seed": self.seed,
        }


@dataclass
class PipelineResult:
    """Everything the pipeline produced, plus per-stage timings and stats."""

    records: List[Record]
    candidates: CandidateResult
    scored: ScoredCandidates
    clusters: ClusterResult
    stage_seconds: Dict[str, float]
    config: PipelineConfig
    index_stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """The stats payload written as ``stats.json`` / printed by the CLI."""
        stages: Dict[str, Dict[str, float]] = {}
        stage_stats = {
            "ingest": {"num_records": float(len(self.records))},
            "block": self.index_stats,
            "pair": self.candidates.stats,
            "score": self.scored.stats,
            "cluster": self.clusters.stats,
        }
        for name in STAGE_ORDER:
            entry = {"seconds": round(self.stage_seconds.get(name, 0.0), 4)}
            entry.update({key: round(float(value), 6) if isinstance(value, float) else value
                          for key, value in stage_stats[name].items()})
            stages[name] = entry
        return {
            "config": self.config.as_dict(),
            "stages": stages,
            "total_seconds": round(sum(self.stage_seconds.values()), 4),
        }

    def write(self, output_dir: Union[str, Path]) -> Path:
        """Write clusters (JSONL), matches (JSONL) and stats (JSON) to a directory."""
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        sources = {record.record_id: record.source for record in self.records}

        with (output_dir / "clusters.jsonl").open("w", encoding="utf-8") as handle:
            for cluster_id, members in enumerate(self.clusters.clusters):
                handle.write(json.dumps({
                    "cluster_id": cluster_id,
                    "size": len(members),
                    "record_ids": members,
                    "sources": sorted({sources[record_id] for record_id in members}),
                }, sort_keys=True) + "\n")

        threshold = self.config.score_threshold
        with (output_dir / "matches.jsonl").open("w", encoding="utf-8") as handle:
            for pair, score in zip(self.scored.pairs, self.scored.scores):
                if score >= threshold:
                    handle.write(json.dumps({
                        "left_record_id": pair.left.record_id,
                        "right_record_id": pair.right.record_id,
                        "score": round(float(score), 6),
                    }, sort_keys=True) + "\n")

        save_json(self.summary(), output_dir / "stats.json")
        return output_dir


class LinkagePipeline:
    """Orchestrate ingest → block → pair → score → cluster over a record stream.

    Parameters
    ----------
    predictor:
        The fitted :class:`~repro.infer.BatchedPredictor` used by the scoring
        stage.
    config:
        Stage tuning knobs; see :class:`PipelineConfig`.
    """

    def __init__(self, predictor: BatchedPredictor,
                 config: Optional[PipelineConfig] = None) -> None:
        self.predictor = predictor
        self.config = config or PipelineConfig()

    def run(self, records: Iterable[Record]) -> PipelineResult:
        """Run all five stages over ``records`` (any iterable, consumed once)."""
        config = self.config
        seconds: Dict[str, float] = {name: 0.0 for name in STAGE_ORDER}
        stage = CandidateGenerationStage(
            attributes=config.blocking_attributes,
            cross_source_only=config.cross_source_only,
            num_perm=config.num_perm, bands=config.bands,
            max_bucket_size=config.lsh_max_bucket_size,
            max_postings=config.max_postings,
            initials_max_bucket_size=config.initials_max_bucket_size,
            min_token_length=config.min_token_length,
            seed=config.seed,
        )

        with obs.trace("pipeline.run") as run_span:
            # Ingest + block: pull bounded chunks off the stream, index each.
            iterator = iter(records)
            chunk_index = 0
            while True:
                start = time.perf_counter()
                with obs.trace("ingest", chunk=chunk_index):
                    chunk: List[Record] = []
                    for record in iterator:
                        chunk.append(record)
                        if len(chunk) >= config.ingest_chunk_size:
                            break
                seconds["ingest"] += time.perf_counter() - start
                if not chunk:
                    break
                start = time.perf_counter()
                with obs.trace("block", chunk=chunk_index, records=len(chunk)):
                    stage.add_records(chunk)
                seconds["block"] += time.perf_counter() - start
                chunk_index += 1

            start = time.perf_counter()
            with obs.trace("pair"):
                candidates = stage.generate()
            seconds["pair"] = time.perf_counter() - start

            scoring = ScoringStage(self.predictor, chunk_size=config.scoring_chunk_size)
            start = time.perf_counter()
            with obs.trace("score", pairs=len(candidates.pairs)):
                scored = scoring.run(candidates.pairs)
            seconds["score"] = time.perf_counter() - start
            if len(scored):
                scored.stats["pairs_per_second"] = len(scored) / max(seconds["score"], 1e-9)

            clustering = ClusteringStage(threshold=config.score_threshold,
                                         source_consistent=config.source_consistent)
            start = time.perf_counter()
            with obs.trace("cluster"):
                clusters = clustering.run(stage.records, scored)
            seconds["cluster"] = time.perf_counter() - start

            run_span.set("records", len(stage.records))
            run_span.set("candidates", len(candidates.pairs))

        result = PipelineResult(records=stage.records, candidates=candidates,
                                scored=scored, clusters=clusters,
                                stage_seconds=seconds, config=config,
                                index_stats=stage.index_stats())
        if obs.enabled():
            self._record_run_metrics(result, stage)
        return result

    def _record_run_metrics(self, result: PipelineResult,
                            stage: CandidateGenerationStage) -> None:
        """Publish one run's counters/gauges (only called while enabled)."""
        obs.counter("pipeline_runs_total", "Pipeline runs completed").inc()
        obs.counter("pipeline_records_total", "Records ingested by runs").inc(
            len(result.records))
        obs.counter("pipeline_candidates_total",
                    "Candidate pairs generated by runs").inc(len(result.candidates.pairs))
        matches = int(np.count_nonzero(
            np.asarray(result.scored.scores) >= result.config.score_threshold))
        obs.counter("pipeline_matches_total",
                    "Scored pairs at or above the match threshold").inc(matches)
        for name, value in result.stage_seconds.items():
            obs.histogram("pipeline_stage_seconds", "Wall-clock per stage",
                          {"stage": name}).observe(value)
        pair_stats = result.candidates.stats
        if "recall" in pair_stats:
            obs.gauge("pipeline_blocking_recall_ratio",
                      "Blocking recall vs ground truth").set(pair_stats["recall"])
        obs.gauge("pipeline_pair_reduction_ratio",
                  "Candidates kept / possible pairs").set(
            pair_stats.get("reduction_ratio", 0.0))
        for label, skew in stage.skew_report().items():
            obs.gauge("index_bucket_gini_ratio",
                      "Gini of bucket sizes (0 = even, 1 = skewed)",
                      {"index": label}).set(skew["gini"])
            for rank, (_, size) in enumerate(skew["hottest"], start=1):
                obs.gauge("index_hot_bucket_records",
                          "Size of the rank-th hottest bucket",
                          {"index": label, "rank": str(rank)}).set(size)
