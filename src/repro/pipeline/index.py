"""Candidate-generation indexes: MinHash-LSH, inverted tokens, initials keys.

Scalable linkage never enumerates all record pairs; it builds *indexes* whose
buckets group records likely to refer to the same entity (the hashing/canopy
blocking family the paper cites via Cohen & Richman).  Three complementary
indexes are provided:

* :class:`InvertedTokenIndex` — exact token overlap.  Every token posts the
  records containing it; records sharing a (non-stop-word) token become
  candidates.  High recall when sources agree on at least one rare token.
* :class:`MinHashLSHIndex` — Jaccard-similar token *sets*.  Records are
  sketched with vectorized MinHash signatures and banded into buckets, so
  records sharing many tokens collide even when no single token is rare.
* :class:`InitialsKeyIndex` — token-initial keys that survive abbreviation,
  linking "E. B." to "Elliott Bianchi" when no token is shared at all.

Every index ingests incrementally via :meth:`add_records` (streaming-friendly:
a bulk build is just repeated batched adds and yields the same buckets) and
caps bucket/posting sizes so stop-word-like keys cannot explode candidate
counts or memory.  Buckets that overflow their cap are dropped at pair-emission
time — the standard treatment of blocks dominated by frequent keys.
"""

from __future__ import annotations

from itertools import combinations
from typing import (Dict, Hashable, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

import numpy as np

from ..data.records import Record
from ..text.hashing import stable_hash
from ..text.tokenizer import tokenize

__all__ = ["InitialsKeyIndex", "InvertedTokenIndex", "MemoryBucketStore",
           "MinHashLSHIndex", "build_blocking_indexes", "record_tokens"]

# Modulus for the universal hash family h(x) = (a*x + b) mod p. With a
# Mersenne prime below 2**31 every operand stays below 2**31, so the uint64
# products never overflow and the modulo is exact — the family keeps the
# pairwise-independence property MinHash's collision math relies on.
_MERSENNE_PRIME = (1 << 31) - 1
_HASH_RANGE = np.uint64(_MERSENNE_PRIME)


def record_tokens(record: Record, attributes: Optional[Sequence[str]] = None,
                  min_token_length: int = 2) -> List[str]:
    """The token set of a record over ``attributes`` (default: all present).

    Tokens shorter than ``min_token_length`` are dropped; the token set is
    returned sorted so that downstream hashing is order-independent.
    """
    names = record.attribute_names() if attributes is None else attributes
    tokens: Set[str] = set()
    for attribute in names:
        for token in tokenize(record.value(attribute)):
            if len(token) >= min_token_length:
                tokens.add(token)
    return sorted(tokens)


class MemoryBucketStore(dict):
    """The default posting-list/bucket backend: a plain in-process dict.

    The bucket *store* owns only key → member-position lists; the cap
    semantics (one extra entry marks an overflowed bucket, overflowed
    buckets are dead) are shared with every other backend so that swapping
    the store never changes blocking output.  The SQLite backend in
    :mod:`repro.storage.backends` implements this same interface with the
    probe and pair-emission walks fused into single SQL passes.
    """

    def members(self, key: Hashable) -> Sequence[int]:
        """Member positions of one bucket, in insertion order (may be empty)."""
        return self.get(key, ())

    def add(self, key: Hashable, position: int, cap: int) -> None:
        """Append to a bucket unless it has already overflowed ``cap``."""
        bucket = self.setdefault(key, [])
        if len(bucket) <= cap:  # one extra entry marks overflow
            bucket.append(position)

    def probe(self, keys: Iterable[Hashable], cap: int) -> Set[int]:
        """Positions in live (non-overflowed) buckets under any of ``keys``."""
        positions: Set[int] = set()
        for key in keys:
            bucket = self.get(key)
            if bucket and len(bucket) <= cap:
                positions.update(bucket)
        return positions

    def emit_pairs(self, cap: int) -> Iterator[Tuple[int, int]]:
        """Unordered position pairs co-resident in a live bucket.

        Pairs are emitted ``(earlier, later)`` in insertion order — positions
        grow with insertion, so this is (smaller, larger).
        """
        for bucket in self.values():
            if len(bucket) < 2 or len(bucket) > cap:
                continue
            yield from combinations(bucket, 2)

    def sizes(self) -> Dict[Hashable, int]:
        """Member count of every bucket (overflowed ones included)."""
        return {key: len(bucket) for key, bucket in self.items()}

    def overflowed(self, cap: int) -> int:
        """How many buckets exceeded ``cap`` (and are therefore dead)."""
        return sum(1 for bucket in self.values() if len(bucket) > cap)

    def entries(self) -> Iterator[Tuple[Hashable, List[int]]]:
        """Every ``(key, members)`` bucket, for state serialization."""
        return iter(self.items())

    def load(self, entries: Iterable[Tuple[Hashable, List[int]]]) -> None:
        """Replace the whole bucket state with ``entries`` (bulk restore)."""
        self.clear()
        for key, members in entries:
            self[key] = list(members)


class _BucketedIndex:
    """Shared scaffolding: record registry, capped buckets, pair emission.

    Subclasses decide which bucket keys a record lands in; this base class
    owns the record-id/source registry, the overflow-capped membership lists
    (each list may grow one entry past ``max_bucket_size`` to mark the
    overflow while bounding memory), and the emission of position pairs from
    non-overflowed buckets.

    ``bucket_store`` swaps the posting-list backend (default: the in-memory
    :class:`MemoryBucketStore`); every backend follows the same cap
    semantics, so blocking output is backend-invariant.
    """

    def __init__(self, max_bucket_size: int,
                 bucket_store: Optional[MemoryBucketStore] = None) -> None:
        if max_bucket_size < 2:
            raise ValueError(f"bucket cap must be >= 2, got {max_bucket_size}")
        self.max_bucket_size = max_bucket_size
        self._record_ids: List[str] = []
        self._sources: List[str] = []
        self._buckets = bucket_store if bucket_store is not None else MemoryBucketStore()

    def __len__(self) -> int:
        return len(self._record_ids)

    @property
    def record_ids(self) -> List[str]:
        """Ids of the indexed records, in insertion order."""
        return list(self._record_ids)

    @property
    def sources(self) -> List[str]:
        """Sources of the indexed records, aligned with :attr:`record_ids`."""
        return list(self._sources)

    def _record_keys(self, record: Record) -> Iterable[Hashable]:
        """The bucket keys ``record`` lands in (subclass hook).

        Must match the keys the subclass's ``add_records`` would use, so the
        single-record :meth:`ingest_one` and the read-only :meth:`probe` stay
        bit-compatible with bulk ingestion.
        """
        raise NotImplementedError

    def bucket_keys(self, record: Record) -> List[Hashable]:
        """The bucket keys ``record`` lands in (public, read-only).

        A pure function of the record and the index configuration — nothing
        is registered or mutated.  This is the routing primitive shared by
        the online :meth:`probe` path and the shard router of
        :mod:`repro.pipeline.sharded`: any process that computes a record's
        keys under an equally-configured index gets the identical key set.
        """
        return list(self._record_keys(record))

    def bucket_keys_batch(self, records: Sequence[Record]) -> List[List[Hashable]]:
        """Per-record bucket keys for a batch (read-only; vectorized where the
        subclass supports it).  ``bucket_keys_batch(batch)[i]`` equals
        ``bucket_keys(batch[i])`` for every ``i``."""
        return [list(self._record_keys(record)) for record in records]

    def preview_one(self, record: Record
                    ) -> Tuple[int, List[Tuple[int, int]], List[List[int]], List[Hashable]]:
        """Plan one record's insertion without mutating anything.

        Returns ``(position, emitted, retracted, keys)``:

        * ``position`` — the registry slot the record *would* take;
        * ``emitted`` — ``(existing, position)`` pairs that would newly share
          a live bucket, one entry *per shared bucket* (callers counting
          per-bucket support see the same pair once per co-bucket);
        * ``retracted`` — the member lists of buckets this record would tip
          over ``max_bucket_size``.  Batch :meth:`candidate_pairs` emits
          nothing from overflowed buckets, so pairs previously supported by
          such a bucket lose that support;
        * ``keys`` — the record's bucket keys, to pass to :meth:`commit_one`
          (so e.g. MinHash signatures are computed once per insert).

        The preview/commit split lets callers fail between planning and
        mutation (e.g. a scoring error) without half-ingested state.
        """
        position = len(self._record_ids)
        keys = list(self._record_keys(record))
        emitted: List[Tuple[int, int]] = []
        retracted: List[List[int]] = []
        for key in keys:
            bucket = self._buckets.members(key)
            if len(bucket) > self.max_bucket_size:
                continue  # already overflowed: dead and no longer growing
            if len(bucket) == self.max_bucket_size:
                # This record would tip the bucket over the cap, withdrawing
                # its support from the pairs among the prior members.
                retracted.append(list(bucket))
                continue
            emitted.extend((member, position) for member in bucket)
        return position, emitted, retracted, keys

    def commit_one(self, record: Record, keys: Sequence[Hashable]) -> int:
        """Apply a :meth:`preview_one` plan: register and bucket the record.

        Final bucket state is bit-identical to ``add_records`` over the same
        record sequence, so streaming ingestion equals bulk ingestion.
        """
        position = self._register(record)
        for key in keys:
            self._bucket_add(key, position)
        return position

    def ingest_one(self, record: Record) -> Tuple[int, List[Tuple[int, int]], List[List[int]]]:
        """Insert one record and report the candidate-pair deltas it caused
        (:meth:`preview_one` and :meth:`commit_one` in one step)."""
        position, emitted, retracted, keys = self.preview_one(record)
        self.commit_one(record, keys)
        return position, emitted, retracted

    def probe(self, record: Record) -> Set[int]:
        """Positions sharing a live bucket with ``record``, without inserting.

        The read-only lookup used by online queries: overflowed buckets are
        skipped (matching :meth:`candidate_pairs` semantics) and the probe
        record itself is never registered.  Key computation
        (:meth:`_record_keys`) is pure, so callers that must minimise lock
        hold time can precompute keys and call :meth:`probe_keys` directly.
        """
        return self.probe_keys(self._record_keys(record))

    def probe_keys(self, keys: Iterable[Hashable]) -> Set[int]:
        """Positions in live buckets under any of ``keys`` (read-only)."""
        return self._buckets.probe(keys, self.max_bucket_size)

    def _register(self, record: Record) -> int:
        """Add a record to the registry and return its position."""
        position = len(self._record_ids)
        self._record_ids.append(record.record_id)
        self._sources.append(record.source)
        return position

    def _bucket_add(self, key: Hashable, position: int) -> None:
        """Append to a bucket unless it has already overflowed its cap."""
        self._buckets.add(key, position, self.max_bucket_size)

    def candidate_pairs(self, cross_source_only: bool = False) -> Set[Tuple[int, int]]:
        """Unordered position pairs sharing a non-overflowed bucket."""
        pairs: Set[Tuple[int, int]] = set()
        sources = self._sources
        for left, right in self._buckets.emit_pairs(self.max_bucket_size):
            if cross_source_only and sources[left] == sources[right]:
                continue
            pairs.add((left, right))
        return pairs

    def _overflowed(self) -> int:
        return self._buckets.overflowed(self.max_bucket_size)

    def bucket_sizes(self) -> Dict[Hashable, int]:
        """Member count of every bucket (overflowed ones included)."""
        return self._buckets.sizes()

    # ------------------------------------------------------------------ #
    # State serialization (materialized snapshots)
    # ------------------------------------------------------------------ #
    def _encode_key(self, key: Hashable) -> object:
        """JSON-safe encoding of one bucket key (subclass hook; default: as-is)."""
        return key

    def _decode_key(self, key: object) -> Hashable:
        """Inverse of :meth:`_encode_key`."""
        return key

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serializable copy of the full index state.

        Everything mutable is *copied* (cheap python list copies), so callers
        may build the state under a lock and serialize it outside — the
        copy-under-lock half of the snapshot protocol in
        :mod:`repro.storage.snapshots`.
        """
        return {
            "record_ids": list(self._record_ids),
            "sources": list(self._sources),
            "buckets": [[self._encode_key(key), list(members)]
                        for key, members in self._buckets.entries()],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace the index state with one produced by :meth:`state_dict`.

        The configuration (caps, bands, seeds...) is *not* part of the state:
        the index must be constructed with the same knobs it was saved under,
        exactly as model ``state_dict`` conventions have it.
        """
        self._record_ids = [str(record_id) for record_id in state["record_ids"]]
        self._sources = [str(source) for source in state["sources"]]
        self._buckets.load(
            (self._decode_key(key), [int(member) for member in members])
            for key, members in state["buckets"])

    def skew_stats(self, top_k: int = 5) -> Dict[str, object]:
        """Bucket-size skew summary: Gini coefficient, extremes, and the
        ``top_k`` hottest buckets (the observability hook skew-aware
        sharding will select partitions on).  Walks every bucket — a
        diagnostics call, not a per-ingest one."""
        from ..obs.stats import bucket_skew

        return bucket_skew(self.bucket_sizes(), top_k=top_k)


class InvertedTokenIndex(_BucketedIndex):
    """Incremental inverted index from token to the records containing it.

    Parameters
    ----------
    attributes:
        Attributes whose tokens key the index (default: every attribute
        present on each record).
    min_token_length:
        Shorter tokens are ignored (they behave like stop words); values
        below 1 are treated as 1.
    max_postings:
        Posting lists longer than this are treated as stop words: their
        tokens emit no candidate pairs, and their lists stop growing (one
        extra entry is kept to mark the overflow).
    """

    def __init__(self, attributes: Optional[Sequence[str]] = None,
                 min_token_length: int = 3, max_postings: int = 64,
                 bucket_store: Optional[MemoryBucketStore] = None) -> None:
        super().__init__(max_bucket_size=max_postings, bucket_store=bucket_store)
        self.attributes = list(attributes) if attributes is not None else None
        self.min_token_length = max(min_token_length, 1)

    @property
    def max_postings(self) -> int:
        return self.max_bucket_size

    def _record_keys(self, record: Record) -> List[str]:
        return record_tokens(record, self.attributes, self.min_token_length)

    def add_records(self, records: Iterable[Record]) -> int:
        """Index a batch of records; returns how many were added."""
        added = 0
        for record in records:
            position = self._register(record)
            for token in self._record_keys(record):
                self._bucket_add(token, position)
            added += 1
        return added

    def stats(self) -> Dict[str, int]:
        """Index size counters for pipeline reports."""
        return {
            "records": len(self._record_ids),
            "tokens": len(self._buckets),
            "overflowed_tokens": self._overflowed(),
        }


class InitialsKeyIndex(_BucketedIndex):
    """Blocking keys from token initials, linking abbreviations to full forms.

    Unseen sources abbreviate identifying values ("Elliott Bianchi" becomes
    "E. B."), leaving *zero* shared tokens for the other indexes to key on —
    but the initials survive.  For every attribute value the index emits the
    sorted initials of each token prefix (2 up to ``max_prefix_tokens``
    tokens), so "Elliott Bianchi", "E. B." and "B. L. (live)" style variants
    collide regardless of token order or trailing locale noise.

    Keys are attribute-agnostic: a name abbreviated into one attribute still
    matches the full form stored under another (e.g. ``name`` vs
    ``name_native_language``).

    Scale caveat: initials keys are inherently low-entropy (only ~350
    distinct two-token keys exist), so beyond a few thousand records most
    buckets exceed any sane cap and the index gracefully degrades toward a
    no-op — this is the information-theoretic floor of abbreviation blocking,
    not a tuning problem.  Raise ``max_bucket_size`` when abbreviation recall
    matters more than the quadratic per-bucket candidate cost, or shard the
    corpus (e.g. by entity type) before indexing.
    """

    def __init__(self, attributes: Optional[Sequence[str]] = None,
                 max_prefix_tokens: int = 4, max_bucket_size: int = 64,
                 bucket_store: Optional[MemoryBucketStore] = None) -> None:
        if max_prefix_tokens < 2:
            raise ValueError(f"max_prefix_tokens must be >= 2, got {max_prefix_tokens}")
        super().__init__(max_bucket_size=max_bucket_size, bucket_store=bucket_store)
        self.attributes = list(attributes) if attributes is not None else None
        self.max_prefix_tokens = max_prefix_tokens

    def keys_for_record(self, record: Record) -> Set[str]:
        """The initials blocking keys of one record."""
        names = record.attribute_names() if self.attributes is None else self.attributes
        keys: Set[str] = set()
        for attribute in names:
            tokens = [token for token in tokenize(record.value(attribute))
                      if any(ch.isalnum() for ch in token)]
            initials = [token[0] for token in tokens]
            for length in range(2, min(len(initials), self.max_prefix_tokens) + 1):
                keys.add("".join(sorted(initials[:length])))
        return keys

    def _record_keys(self, record: Record) -> List[str]:
        return sorted(self.keys_for_record(record))

    def add_records(self, records: Iterable[Record]) -> int:
        """Index a batch of records; returns how many were added."""
        added = 0
        for record in records:
            position = self._register(record)
            for key in self.keys_for_record(record):
                self._bucket_add(key, position)
            added += 1
        return added

    def stats(self) -> Dict[str, int]:
        """Index size counters for pipeline reports."""
        return {
            "records": len(self._record_ids),
            "keys": len(self._buckets),
            "overflowed_keys": self._overflowed(),
        }


class MinHashLSHIndex(_BucketedIndex):
    """Vectorized MinHash signatures banded into LSH buckets.

    Every record's token set is sketched with ``num_perm`` universal-hash
    minima computed as one numpy reduction per batch; the signature is split
    into ``bands`` bands whose row values are combined into one bucket key.
    Records colliding in *any* band become candidates, so recall grows with
    the number of bands while each band's rows control precision.

    Parameters
    ----------
    attributes:
        Attributes contributing tokens (default: all present per record).
    num_perm:
        Number of hash permutations (signature length); must be divisible by
        ``bands``.
    bands:
        Number of LSH bands; ``rows = num_perm // bands`` per band.
    min_token_length:
        Shorter tokens are ignored when sketching.
    max_bucket_size:
        Buckets beyond this size are stop-word-like and emit no pairs (their
        member lists also stop growing, bounding memory).
    seed:
        Seed of the hash family; two indexes with equal configuration and
        ingestion order build identical buckets.
    """

    def __init__(self, attributes: Optional[Sequence[str]] = None, num_perm: int = 128,
                 bands: int = 32, min_token_length: int = 2, max_bucket_size: int = 64,
                 seed: int = 7,
                 bucket_store: Optional[MemoryBucketStore] = None) -> None:
        if num_perm <= 0 or bands <= 0 or num_perm % bands:
            raise ValueError(f"num_perm ({num_perm}) must be a positive multiple "
                             f"of bands ({bands})")
        super().__init__(max_bucket_size=max_bucket_size, bucket_store=bucket_store)
        self.attributes = list(attributes) if attributes is not None else None
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self.min_token_length = min_token_length
        self.seed = seed
        rng = np.random.default_rng(np.random.SeedSequence([seed, num_perm, bands]))
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        # Token hashes repeat heavily across records; memoised process-locally.
        self._token_hash_memo: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Sketching
    # ------------------------------------------------------------------ #
    def _token_hashes(self, record: Record) -> List[int]:
        memo = self._token_hash_memo
        hashes: List[int] = []
        for token in record_tokens(record, self.attributes, self.min_token_length):
            value = memo.get(token)
            if value is None:
                value = stable_hash(token, salt=self.seed) % _MERSENNE_PRIME
                memo[token] = value
            hashes.append(value)
        if not hashes:
            # An all-empty record must not collide with every other empty
            # record in every band; give it a unique sentinel "token".
            hashes.append(stable_hash(f"\x00empty:{record.record_id}", salt=self.seed)
                          % _MERSENNE_PRIME)
        return hashes

    def signatures(self, records: Sequence[Record]) -> np.ndarray:
        """MinHash signatures of ``records`` as a ``(num_perm, N)`` array."""
        if not records:
            return np.empty((self.num_perm, 0), dtype=np.uint64)
        token_lists = [self._token_hashes(record) for record in records]
        offsets = np.zeros(len(token_lists), dtype=np.int64)
        offsets[1:] = np.cumsum([len(hashes) for hashes in token_lists])[:-1]
        flat = np.fromiter((value for hashes in token_lists for value in hashes),
                           dtype=np.uint64,
                           count=sum(len(hashes) for hashes in token_lists))
        # (P, T) permuted hashes -> per-record minima along the token axis.
        permuted = (self._a[:, None] * flat[None, :] + self._b[:, None]) % _HASH_RANGE
        return np.minimum.reduceat(permuted, offsets, axis=1)

    def _band_keys(self, signatures: np.ndarray) -> np.ndarray:
        """Combine each band's rows into one integer key per record: (bands, N).

        Polynomial hash over the band's rows; ``combined < 2**31`` and the
        mixer is below 2**20, so the uint64 products are exact.
        """
        keys = np.empty((self.bands, signatures.shape[1]), dtype=np.uint64)
        mixer = np.uint64(1_000_003)
        for band in range(self.bands):
            block = signatures[band * self.rows:(band + 1) * self.rows]
            combined = block[0].copy()
            for row in block[1:]:
                combined = (combined * mixer + row) % _HASH_RANGE
            keys[band] = combined
        return keys

    def _record_keys(self, record: Record) -> List[Tuple[int, int]]:
        keys = self._band_keys(self.signatures([record]))
        return [(band, int(keys[band, 0])) for band in range(self.bands)]

    def _encode_key(self, key: Hashable) -> object:
        return list(key)  # (band, value) tuples are not JSON keys

    def _decode_key(self, key: object) -> Hashable:
        band, value = key  # type: ignore[misc]
        return (int(band), int(value))

    def bucket_keys_batch(self, records: Sequence[Record]) -> List[List[Tuple[int, int]]]:
        """Vectorized batch variant: one signature pass for all ``records``."""
        if not records:
            return []
        keys = self._band_keys(self.signatures(list(records)))
        return [[(band, int(keys[band, i])) for band in range(self.bands)]
                for i in range(len(records))]

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def add_records(self, records: Iterable[Record]) -> int:
        """Sketch and bucket a batch of records; returns how many were added."""
        batch = list(records)
        if not batch:
            return 0
        keys = self._band_keys(self.signatures(batch))
        for i, record in enumerate(batch):
            position = self._register(record)
            for band in range(self.bands):
                self._bucket_add((band, int(keys[band, i])), position)
        return len(batch)

    def stats(self) -> Dict[str, int]:
        """Index size counters for pipeline reports."""
        return {
            "records": len(self._record_ids),
            "buckets": len(self._buckets),
            "overflowed_buckets": self._overflowed(),
            "bands": self.bands,
            "rows": self.rows,
        }


def build_blocking_indexes(attributes: Optional[Sequence[str]] = None,
                           num_perm: int = 128, bands: int = 32,
                           lsh_max_bucket_size: int = 8, max_postings: int = 8,
                           initials_max_bucket_size: int = 16,
                           min_token_length: int = 3, seed: int = 7,
                           bucket_stores: Optional[Sequence[MemoryBucketStore]] = None,
                           ) -> Tuple[MinHashLSHIndex, InvertedTokenIndex,
                                      InitialsKeyIndex]:
    """The canonical blocking-index triple, from the shared config knobs.

    One construction site for the three complementary indexes so the batch
    candidate stage (:class:`~repro.pipeline.candidates.CandidateGenerationStage`),
    the online :class:`~repro.serve.EntityStore` and the shard workers of
    :mod:`repro.pipeline.sharded` can never drift apart: equal knobs produce
    indexes with identical bucket keys and cap semantics, which is the
    foundation of every streamed==batch and sharded==single-process parity
    guarantee in this codebase.

    ``bucket_stores`` (optional, one per index in the returned order) swaps
    the posting-list backend — e.g. three
    :class:`repro.storage.backends.SQLiteBucketStore` instances so cold
    shards page from disk instead of living in RAM.  Backends share cap
    semantics, so blocking output is backend-invariant.
    """
    if bucket_stores is None:
        bucket_stores = (None, None, None)
    if len(bucket_stores) != 3:
        raise ValueError(f"bucket_stores must hold one store per index (3), "
                         f"got {len(bucket_stores)}")
    return (
        MinHashLSHIndex(attributes=attributes, num_perm=num_perm, bands=bands,
                        min_token_length=min_token_length,
                        max_bucket_size=lsh_max_bucket_size, seed=seed,
                        bucket_store=bucket_stores[0]),
        InvertedTokenIndex(attributes=attributes,
                           min_token_length=min_token_length,
                           max_postings=max_postings,
                           bucket_store=bucket_stores[1]),
        InitialsKeyIndex(attributes=attributes,
                         max_bucket_size=initials_max_bucket_size,
                         bucket_store=bucket_stores[2]),
    )
