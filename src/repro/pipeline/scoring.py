"""Scoring stage: feed candidate pairs through the batched inference engine.

Candidates stream through :class:`~repro.infer.BatchedPredictor` in bounded
chunks (each chunk is itself micro-batched by the predictor), so the
*encoding/forward working set* stays flat regardless of how many candidates
blocking produced; the pair list and the final score array are still held in
full, since clustering needs them together.  The encoder reuses the
process-wide :class:`~repro.features.cache.EncodingCache`, so a pair scored
twice (or seen during training) is never re-encoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..data.records import EntityPair
from ..infer.predictor import BatchedPredictor
from ..resilience import faults

__all__ = ["ScoringStage", "ScoredCandidates"]

DEFAULT_CHUNK_SIZE = 2048


@dataclass
class ScoredCandidates:
    """Candidate pairs with their matching probabilities, aligned by index."""

    pairs: List[EntityPair]
    scores: np.ndarray
    stats: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def above(self, threshold: float) -> List[EntityPair]:
        """The pairs scored at or above ``threshold``."""
        return [pair for pair, score in zip(self.pairs, self.scores)
                if score >= threshold]


class ScoringStage:
    """Score candidate pairs with a fitted model in bounded chunks.

    Parameters
    ----------
    predictor:
        A :class:`~repro.infer.BatchedPredictor` wrapping the fitted model.
    chunk_size:
        Pairs scored per outer chunk.  Each chunk is handed to the predictor
        as one bulk request (which micro-batches internally); chunking keeps
        the stage's working set bounded on huge candidate lists.
    """

    def __init__(self, predictor: BatchedPredictor,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.predictor = predictor
        self.chunk_size = chunk_size

    def run(self, pairs: Sequence[EntityPair]) -> ScoredCandidates:
        """Return matching probabilities for ``pairs`` in input order."""
        pairs = list(pairs)
        cache = self.predictor.encoder.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        chunks: List[np.ndarray] = []
        for _, probabilities in self.predictor.predict_proba_stream(pairs, self.chunk_size):
            faults.check("scoring.batch", chunk=len(chunks))
            chunks.append(probabilities)
        scores = np.concatenate(chunks) if chunks else np.zeros(0)
        stats: Dict[str, float] = {
            "num_pairs": float(len(pairs)),
            "chunks": float(len(chunks)),
            "micro_batch_size": float(self.predictor.micro_batch_size),
        }
        if cache is not None:
            hits = cache.hits - hits_before
            lookups = hits + cache.misses - misses_before
            stats["encoding_cache_hits"] = float(hits)
            stats["encoding_cache_hit_rate"] = hits / lookups if lookups else 0.0
        if len(pairs):
            stats["mean_score"] = float(scores.mean())
        return ScoredCandidates(pairs=pairs, scores=scores, stats=stats)
