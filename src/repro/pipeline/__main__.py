"""CLI entry point: ``python -m repro.pipeline``.

Runs the end-to-end linkage engine (ingest → block → pair → score → cluster)
over either a synthetic corpus or a user CSV, and writes clusters, matches
and per-stage statistics to an output directory.

Two ways to provide records:

* ``--dataset music3k`` (default) — generate a synthetic multi-source corpus
  and, unless ``--model`` is given, train a quick AdaMEL model on its
  labeled scenario before linking the full record set;
* ``--records corpus.csv`` — stream records written by
  :func:`repro.data.storage.write_records_csv`; requires ``--model`` (a
  bundle saved with :func:`repro.infer.save_model`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..core.variants import create_variant
from ..data.storage import iter_records_csv
from ..experiments.scenarios import DATASETS, build_corpus, build_scenario
from ..infer.predictor import BatchedPredictor
from .engine import STAGE_ORDER, LinkagePipeline, PipelineConfig

DEFAULT_OUTPUT_DIR = "pipeline_out"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Run the end-to-end linkage pipeline and write clusters + stats.",
    )
    source = parser.add_argument_group("record source")
    source.add_argument("--dataset", choices=DATASETS, default="music3k",
                        help="synthetic corpus to link (default: music3k)")
    source.add_argument("--entity-type", default="artist",
                        help="entity type for the synthetic corpus (default: artist)")
    source.add_argument("--records", default=None, metavar="CSV",
                        help="link records from a CSV written by write_records_csv "
                             "instead of a synthetic corpus (requires --model)")
    model = parser.add_argument_group("model")
    model.add_argument("--model", default=None, metavar="BUNDLE",
                       help="saved model bundle directory (default: train a quick "
                            "AdaMEL model on the synthetic corpus)")
    model.add_argument("--variant", default="adamel-hyb",
                       help="AdaMEL variant to train when no --model is given")
    model.add_argument("--epochs", type=int, default=20,
                       help="training epochs for the quick model (default: 20)")
    tuning = parser.add_argument_group("pipeline tuning")
    tuning.add_argument("--scale", choices=("smoke", "bench", "paper"), default="smoke",
                        help="synthetic corpus / model scale (default: smoke)")
    tuning.add_argument("--seed", type=int, default=0, help="corpus/model seed")
    tuning.add_argument("--threshold", type=float, default=0.5,
                        help="match-score threshold for clustering (default: 0.5)")
    tuning.add_argument("--num-perm", type=int, default=128,
                        help="MinHash permutations (default: 128)")
    tuning.add_argument("--bands", type=int, default=32,
                        help="LSH bands (default: 32)")
    tuning.add_argument("--max-bucket-size", type=int, default=None,
                        help="LSH bucket / token posting cap (default: the "
                             "PipelineConfig defaults)")
    tuning.add_argument("--attributes", default=None,
                        help="comma-separated blocking attributes (default: all)")
    tuning.add_argument("--chunk-size", type=int, default=2048,
                        help="ingest/scoring chunk size (default: 2048)")
    sharding = parser.add_argument_group("sharded execution")
    sharding.add_argument("--workers", type=int, default=None, metavar="N",
                          help="run the sharded pipeline with N worker "
                               "processes (default: single-process engine)")
    sharding.add_argument("--shards", type=int, default=None, metavar="M",
                          help="shard count for --workers (default: one "
                               "shard per worker)")
    parser.add_argument("--output-dir", default=DEFAULT_OUTPUT_DIR,
                        help=f"where to write clusters/matches/stats "
                             f"(default: {DEFAULT_OUTPUT_DIR})")
    parser.add_argument("--export", default=None, metavar="JSONL",
                        help="enable telemetry for the run and write a metrics + "
                             "trace export (view with python -m repro.obs)")
    return parser


def _quick_predictor(args: argparse.Namespace) -> BatchedPredictor:
    """Train a small AdaMEL model on the synthetic corpus's labeled scenario."""
    from ..bench.runner import select_scale

    _, scale = select_scale(args.scale)
    scenario = build_scenario(args.dataset, args.entity_type, mode="overlapping",
                              scale=scale, seed=args.seed)
    model = create_variant(args.variant, scale.adamel_config(epochs=args.epochs))
    print(f"training {args.variant} on {scenario.name} "
          f"({len(scenario.source)} labeled pairs) ...", flush=True)
    model.fit(scenario)
    return BatchedPredictor.from_trainer(model)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.records is not None and args.model is None:
        print("error: --records requires --model (there are no labels to train on)",
              file=sys.stderr)
        return 2

    if args.export is None:
        return _run(args)
    from .. import obs

    with obs.telemetry():
        status = _run(args)
        path = obs.write_export(args.export)
    print(f"wrote telemetry export to {path} "
          f"(view: python -m repro.obs --from-export {path})")
    return status


def _run(args: argparse.Namespace) -> int:
    if args.model is not None:
        predictor = BatchedPredictor.load(args.model)
    else:
        predictor = _quick_predictor(args)

    if args.records is not None:
        records = iter_records_csv(args.records)
    else:
        from ..bench.runner import select_scale

        _, scale = select_scale(args.scale)
        corpus = build_corpus(args.dataset, entity_type=args.entity_type,
                              scale=scale, seed=args.seed)
        records = corpus.records

    attributes = ([name.strip() for name in args.attributes.split(",") if name.strip()]
                  if args.attributes else None)
    overrides = {}
    if args.max_bucket_size is not None:
        overrides.update(lsh_max_bucket_size=args.max_bucket_size,
                         max_postings=args.max_bucket_size,
                         initials_max_bucket_size=args.max_bucket_size)
    config = PipelineConfig(
        blocking_attributes=attributes,
        num_perm=args.num_perm,
        bands=args.bands,
        score_threshold=args.threshold,
        scoring_chunk_size=args.chunk_size,
        ingest_chunk_size=args.chunk_size,
        **overrides,
    )
    if args.workers is not None or args.shards is not None:
        from .sharded import ShardConfig, ShardedPipeline

        shard_config = ShardConfig(workers=args.workers or 1,
                                   num_shards=args.shards)
        pipeline = ShardedPipeline(predictor, config=config, shards=shard_config)
    else:
        pipeline = LinkagePipeline(predictor, config=config)
    result = pipeline.run(records)

    summary = result.summary()
    print(f"\nlinked {len(result.records)} records in "
          f"{summary['total_seconds']:.2f}s")
    for name in STAGE_ORDER:
        entry = summary["stages"][name]
        extras = {key: value for key, value in entry.items() if key != "seconds"}
        line = f"  {name:8s} {entry['seconds']:8.3f}s"
        if extras:
            line += "  " + " ".join(f"{key}={value}" for key, value in sorted(extras.items()))
        print(line)

    pair_stats = result.candidates.stats
    cluster_stats = result.clusters.stats
    print(f"\nblocking: {int(pair_stats['num_candidates'])} candidates out of "
          f"{int(pair_stats['possible_pairs'])} possible cross-source pairs "
          f"({pair_stats['pair_reduction_factor']:.1f}x reduction)")
    if "recall" in pair_stats:
        print(f"blocking recall vs entity_id ground truth: {pair_stats['recall']:.4f}")
    print(f"clusters: {int(cluster_stats['num_clusters'])} "
          f"({int(cluster_stats['num_singletons'])} singletons, "
          f"largest {int(cluster_stats['max_cluster_size'])}); "
          f"transitivity violations: {int(cluster_stats['transitivity_violations'])}")
    sharding = summary.get("sharding")
    if sharding:
        print(f"sharding: {sharding['num_shards']} shard(s) / "
              f"{sharding['workers']} worker(s) "
              f"(processes: {sharding['used_processes']}); "
              f"load gini {sharding['gini_hashed']:.3f} -> "
              f"{sharding['gini_balanced']:.3f}; "
              f"{sharding['hot_buckets_split']} hot bucket(s) split; "
              f"{sharding['duplicate_scored_pairs']} duplicate-scored pair(s)")
    if "pairwise_f1" in cluster_stats:
        print(f"pairwise precision/recall/F1 vs ground truth: "
              f"{cluster_stats['pairwise_precision']:.4f} / "
              f"{cluster_stats['pairwise_recall']:.4f} / "
              f"{cluster_stats['pairwise_f1']:.4f}")

    output_dir = result.write(args.output_dir)
    print(f"\nwrote {output_dir}/clusters.jsonl, matches.jsonl, stats.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
