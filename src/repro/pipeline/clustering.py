"""Entity resolution: threshold match scores and cluster with union-find.

Pairwise match probabilities are not yet entities: the final stage thresholds
the scores and resolves the surviving match edges into connected components
(transitive closure) with a union-find structure.  Because transitivity is
*imposed* rather than predicted, the stage also reports how often it was
violated — candidate pairs the model scored below the threshold whose records
nevertheless ended up co-clustered — and, when ``entity_id`` ground truth is
available, pairwise precision/recall/F1 of the produced clusters.

Cluster output is canonical: members are sorted by record id and clusters by
their smallest member, so the result is invariant to edge processing order.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..data.records import Record
from .scoring import ScoredCandidates

__all__ = ["UnionFind", "ClusteringStage", "ClusterResult", "MatchEdge",
           "apply_match_edges", "eligible_match_edges", "order_match_edges",
           "pairwise_cluster_metrics"]

# A thresholded match edge: (score, left record id, right record id) with
# ``left < right`` under string order — the canonical key both the batch
# stage and the online entity store sort and merge by.
MatchEdge = Tuple[float, str, str]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, items: Optional[Iterable[Hashable]] = None) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items or ():
            self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton component (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Root of ``item``'s component (with path compression)."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the components of ``left`` and ``right``; True when distinct."""
        self.add(left)
        self.add(right)
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return False
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Whether both items are registered and share a component."""
        if left not in self._parent or right not in self._parent:
            return False
        return self.find(left) == self.find(right)

    def groups(self) -> List[List[Hashable]]:
        """Components as member lists, each sorted, ordered by first member.

        The canonical ordering makes the output independent of the order in
        which items were added and edges were unioned.
        """
        components: Dict[Hashable, List[Hashable]] = defaultdict(list)
        for item in self._parent:
            components[self.find(item)].append(item)
        groups = [sorted(members) for members in components.values()]
        groups.sort(key=lambda members: members[0])
        return groups


def order_match_edges(edges: Iterable[MatchEdge]) -> List[MatchEdge]:
    """Sort match edges best-first under the canonical total order.

    Edges are processed in descending score order with ``(left_id, right_id)``
    as the deterministic tie-break, so greedy merging is independent of the
    order in which edges were discovered.  Streaming one record at a time and
    batch runs therefore agree as long as both resolve from this order.
    """
    return sorted(edges, key=lambda edge: (-edge[0], edge[1], edge[2]))


def apply_match_edges(union_find: UnionFind,
                      cluster_sources: Optional[Dict[Hashable, set]],
                      edges: Sequence[MatchEdge]) -> Tuple[int, int]:
    """Greedily merge pre-ordered ``edges`` into ``union_find``.

    ``cluster_sources`` maps each current root to the set of data sources in
    its cluster; when provided, a merge that would co-cluster two records of
    one source is vetoed (the source-consistency constraint).  Pass ``None``
    to disable the veto (plain transitive closure).  Returns ``(matches,
    source_conflicts)``: edges whose endpoints ended up co-clustered, and
    edges vetoed by the constraint.

    Because a merge/veto decision depends only on the state of the edge's own
    connected component, greedy resolution over any union of whole components
    equals the global greedy restricted to those records — the property the
    online :class:`~repro.serve.EntityStore` relies on to re-resolve only the
    components an upsert touched.
    """
    matches = 0
    source_conflicts = 0
    for _, left_id, right_id in edges:
        root_left = union_find.find(left_id)
        root_right = union_find.find(right_id)
        if root_left == root_right:
            matches += 1
            continue
        if cluster_sources is not None and cluster_sources[root_left] & cluster_sources[root_right]:
            source_conflicts += 1
            continue
        union_find.union(root_left, root_right)
        if cluster_sources is not None:
            cluster_sources[union_find.find(root_left)] = (
                cluster_sources[root_left] | cluster_sources[root_right])
        matches += 1
    return matches, source_conflicts


def eligible_match_edges(scored: ScoredCandidates, threshold: float) -> List[MatchEdge]:
    """The thresholded match edges of ``scored``, in canonical best-first order.

    Below-threshold pairs never become merge edges, so they are dropped
    before the Python-level sort.  Both the batch :class:`ClusteringStage`
    and the cross-shard merge of :class:`~repro.pipeline.sharded.ShardedPipeline`
    resolve from exactly this edge list, which is what makes their cluster
    output comparable edge-for-edge.
    """
    eligible = np.flatnonzero(np.asarray(scored.scores) >= threshold)
    return order_match_edges(
        (float(scored.scores[i]), scored.pairs[i].left.record_id,
         scored.pairs[i].right.record_id)
        for i in eligible.tolist())


def pairwise_cluster_metrics(assignments: Dict[str, int],
                             truth: Dict[str, str]) -> Dict[str, float]:
    """Pairwise precision/recall/F1 of a clustering against entity ground truth.

    Both mappings are keyed by record id; only records present in ``truth``
    are evaluated.  A "pair" is any unordered pair of evaluated records; it is
    predicted positive when co-clustered and truly positive when the records
    share an ``entity_id``.  Counts are computed from group sizes, never by
    enumerating pairs.
    """
    evaluated = [record_id for record_id in assignments if record_id in truth]
    cluster_sizes = Counter(assignments[record_id] for record_id in evaluated)
    entity_sizes = Counter(truth[record_id] for record_id in evaluated)
    joint_sizes = Counter((assignments[record_id], truth[record_id])
                          for record_id in evaluated)

    def _pairs(counts: Counter) -> int:
        return sum(count * (count - 1) // 2 for count in counts.values())

    predicted = _pairs(cluster_sizes)
    actual = _pairs(entity_sizes)
    true_positive = _pairs(joint_sizes)
    precision = true_positive / predicted if predicted else 0.0
    recall = true_positive / actual if actual else 0.0
    f1 = (2 * precision * recall / (precision + recall)) if precision + recall else 0.0
    return {
        "pairwise_precision": precision,
        "pairwise_recall": recall,
        "pairwise_f1": f1,
        "evaluated_records": float(len(evaluated)),
    }


@dataclass
class ClusterResult:
    """Resolved entities plus clustering-quality statistics."""

    clusters: List[List[str]]
    assignments: Dict[str, int]
    violations: List[Tuple[str, str, float]]
    stats: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.clusters)


class ClusteringStage:
    """Threshold scored pairs and resolve entities via connected components.

    Match edges are applied in *descending score order*; with
    ``source_consistent`` (the default) a merge is vetoed when it would put
    two records from the same data source into one cluster.  In cross-source
    linkage an entity has at most one record per source, so the constraint is
    a hard structural prior — it stops one spurious edge between
    near-duplicate entities from snowballing whole source catalogues into a
    single giant cluster, the classic failure mode of plain transitive
    closure.

    Parameters
    ----------
    threshold:
        Minimum matching probability for a pair to become a merge edge.
    source_consistent:
        Veto merges that would co-cluster two records of one source.  Disable
        for deployments where one source can legitimately hold duplicates.
    """

    def __init__(self, threshold: float = 0.5, source_consistent: bool = True) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.source_consistent = source_consistent

    def run(self, records: Sequence[Record], scored: ScoredCandidates) -> ClusterResult:
        """Cluster ``records`` using the match edges in ``scored``.

        Every record appears in exactly one cluster (unmatched records stay
        singletons).  Edges are processed best-first under a total order
        (score, then pair key) and cluster ids are assigned canonically, so
        two runs over the same scores produce identical output regardless of
        record or edge ordering.
        """
        union_find = UnionFind(record.record_id for record in records)
        cluster_sources: Dict[Hashable, set] = {record.record_id: {record.source}
                                                for record in records}
        unknown = {record_id
                   for pair in scored.pairs
                   for record_id in (pair.left.record_id, pair.right.record_id)
                   if record_id not in union_find}
        if unknown:
            raise ValueError(
                f"scored pairs reference {len(unknown)} record id(s) not in "
                f"`records` (e.g. {sorted(unknown)[:3]}); score and cluster "
                f"over the same record set")
        edges = eligible_match_edges(scored, self.threshold)
        matches, source_conflicts = apply_match_edges(
            union_find, cluster_sources if self.source_consistent else None, edges)

        clusters = union_find.groups()
        assignments = {record_id: cluster_id
                       for cluster_id, members in enumerate(clusters)
                       for record_id in members}

        # Transitivity violations: candidate pairs the model rejected whose
        # records were nevertheless merged through other edges.
        violations: List[Tuple[str, str, float]] = []
        for pair, score in zip(scored.pairs, scored.scores):
            if score < self.threshold and union_find.connected(
                    pair.left.record_id, pair.right.record_id):
                violations.append((pair.left.record_id, pair.right.record_id, float(score)))
        rejected = int(np.sum(scored.scores < self.threshold)) if len(scored) else 0

        sizes = [len(members) for members in clusters]
        stats: Dict[str, float] = {
            "threshold": self.threshold,
            "num_records": float(len(records)),
            "num_clusters": float(len(clusters)),
            "num_match_edges": float(matches),
            "source_conflicts": float(source_conflicts),
            "num_singletons": float(sum(1 for size in sizes if size == 1)),
            "max_cluster_size": float(max(sizes)) if sizes else 0.0,
            "transitivity_violations": float(len(violations)),
            "transitivity_violation_rate": len(violations) / rejected if rejected else 0.0,
        }
        truth = {record.record_id: record.entity_id
                 for record in records if record.entity_id is not None}
        if truth:
            stats.update(pairwise_cluster_metrics(assignments, truth))
        return ClusterResult(clusters=clusters, assignments=assignments,
                             violations=violations, stats=stats)
