"""Sharded linkage pipeline: shared-nothing blocking/scoring across processes.

:class:`~repro.pipeline.engine.LinkagePipeline` runs every stage in one
process.  This module partitions the expensive middle of the pipeline —
bucket pair emission and candidate scoring — into *shared-nothing shards*
executed by a pool of worker processes, while keeping the cheap global
stages (ingest, routing, cross-shard merge, union-find clustering) in the
driver.  See ``docs/sharding.md`` for the full design.

The partitioning unit is the **bucket**, not the record.  Every blocking
index assigns each record a set of bucket keys (:meth:`bucket_keys`, a pure
function of record + index config), and a bucket's candidate pairs depend
only on its own member list.  Routing whole buckets to shards by a stable
key hash therefore yields shards that can emit and score their pairs with
zero communication:

* **Phase A (sketch)** — workers compute per-record bucket keys in parallel
  (the MinHash signature pass is the bulk of blocking CPU).  The driver
  assembles the global bucket membership lists in record-insertion order,
  applying the same ``cap + 1`` overflow semantics as the single-process
  indexes, so the bucket state is bit-identical to a batch build.
* **Routing** — :class:`ShardRouter` assigns each live bucket to
  ``stable_hash(index_id | key) % num_shards`` and estimates its pair load
  as ``C(size, 2)``.  Buckets whose load exceeds a hot threshold are
  *split*: their pair enumeration is partitioned round-robin into slices
  placed on the least-loaded shards.  Because a split changes only *where*
  a bucket's pairs are enumerated — never *which* pairs exist — any
  assignment produces the same global pair set, which is the deterministic
  fallback guarantee: sharded output equals single-process output
  regardless of how aggressively the router rebalances.
* **Phase B (emit + score)** — each worker enumerates its buckets' pairs,
  dedupes within the shard, sorts them into the canonical
  ``(record_id, record_id)`` order and scores them through the inherited
  :class:`~repro.infer.BatchedPredictor` in ``scoring_chunk_size`` chunks.
* **Merge** — the driver dedupes pairs scored by more than one shard
  (keeping the lowest shard id's score, a deterministic rule), re-sorts the
  union into canonical order, and runs the ordinary global
  :class:`~repro.pipeline.clustering.ClusteringStage` — cross-shard match
  edges meet in the union-find here, exactly as single-process edges do.

Worker state (records, predictor, config) travels by **fork inheritance**
through module globals — nothing heavyweight is pickled.  On platforms
without ``fork``, or with ``workers=1``, the same code runs sequentially
in-process; ``workers=1`` with one shard is *bit-identical* to
``LinkagePipeline.run`` (same pair order, same scoring chunks).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import combinations
from typing import (Dict, Hashable, Iterable, List, Optional, Sequence, Set,
                    Tuple)

import numpy as np

from .. import obs
from ..data.blocking import ground_truth_pairs, possible_cross_source_pairs
from ..data.records import EntityPair, Record
from ..infer.predictor import BatchedPredictor
from ..resilience import faults
from ..resilience.retry import FaultReport, RetryPolicy, TaskExecutor
from ..text.hashing import stable_hash
from .candidates import CandidateResult
from .clustering import ClusteringStage
from .engine import STAGE_ORDER, PipelineConfig, PipelineResult
from .index import build_blocking_indexes
from .scoring import ScoredCandidates, ScoringStage

__all__ = ["BucketTask", "ShardConfig", "ShardReport", "ShardRouter",
           "ShardedPipeline", "ShardedPipelineResult", "shard_of_key"]

# One unit of shard work: (index_id, member positions, slice_index, num_slices).
# An unsplit bucket is the single slice ``(…, 0, 1)``; a split bucket appears
# as ``num_slices`` tasks that partition its pair enumeration round-robin.
BucketTask = Tuple[int, Tuple[int, ...], int, int]

# Index order must match build_blocking_indexes(); labels must match
# CandidateGenerationStage._index_labels() so index_stats keys line up.
_INDEX_LABELS = ("MinHashLSHIndex", "InvertedTokenIndex", "InitialsKeyIndex")


def shard_of_key(index_id: int, key: Hashable, num_shards: int) -> int:
    """The home shard of a bucket: a stable hash of ``(index_id, key)``.

    Uses :func:`~repro.text.hashing.stable_hash` (FNV-1a over the key's
    ``repr``), so the assignment is identical across processes, runs and
    machines — the router and any worker agree on bucket placement without
    coordination.
    """
    return stable_hash(f"{index_id}|{key!r}") % num_shards


@dataclass(frozen=True)
class ShardConfig:
    """Tuning knobs for the sharded execution layer.

    ``workers`` is the process count; ``num_shards`` (default: ``workers``)
    is the partition count — more shards than workers is legal and simply
    queues shards on the pool.  A bucket is *hot* when its estimated pair
    load ``C(size, 2)`` exceeds ``max(min_split_pairs, hot_bucket_factor ×
    fair_share)`` where ``fair_share`` is ``total_load / num_shards``; hot
    buckets are split across shards.  If the balanced assignment still has a
    load Gini above ``rebalance_gini``, the router falls back to a full
    greedy repack (deterministic, load-descending).

    ``retry`` governs fault tolerance around worker tasks: bounded pool
    attempts with backoff, an optional per-attempt deadline, and in-process
    fallback after exhaustion (see :class:`~repro.resilience.RetryPolicy`).
    Because shard tasks are pure functions of forked state, any schedule of
    retries/fallbacks that eventually succeeds yields output bit-identical
    to a fault-free run.
    """

    workers: int = 4
    num_shards: Optional[int] = None
    hot_bucket_factor: float = 4.0
    min_split_pairs: int = 256
    rebalance_gini: float = 0.5
    sketch_chunk_size: int = 2048
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.hot_bucket_factor <= 0:
            raise ValueError("hot_bucket_factor must be positive")
        if self.sketch_chunk_size < 1:
            raise ValueError("sketch_chunk_size must be >= 1")

    @property
    def resolved_shards(self) -> int:
        return self.num_shards if self.num_shards is not None else self.workers

    def as_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "num_shards": self.resolved_shards,
            "hot_bucket_factor": self.hot_bucket_factor,
            "min_split_pairs": self.min_split_pairs,
            "rebalance_gini": self.rebalance_gini,
            "sketch_chunk_size": self.sketch_chunk_size,
            "retry": self.retry.as_dict(),
        }


@dataclass
class ShardReport:
    """What the router and the workers did during one sharded run."""

    num_shards: int
    workers: int
    used_processes: bool
    routed_buckets: int = 0
    dead_buckets: int = 0
    trivial_buckets: int = 0
    hot_buckets_split: int = 0
    slices_created: int = 0
    rebalanced: bool = False
    estimated_pair_load: int = 0
    shard_loads: List[int] = field(default_factory=list)
    gini_hashed: float = 0.0
    gini_balanced: float = 0.0
    duplicate_scored_pairs: int = 0
    shard_candidates: List[int] = field(default_factory=list)
    shard_emit_seconds: List[float] = field(default_factory=list)
    shard_score_seconds: List[float] = field(default_factory=list)
    fault_report: FaultReport = field(default_factory=FaultReport)

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly payload for bench records and ``stats.json``."""
        return {
            "num_shards": self.num_shards,
            "workers": self.workers,
            "used_processes": self.used_processes,
            "routed_buckets": self.routed_buckets,
            "dead_buckets": self.dead_buckets,
            "trivial_buckets": self.trivial_buckets,
            "hot_buckets_split": self.hot_buckets_split,
            "slices_created": self.slices_created,
            "rebalanced": self.rebalanced,
            "estimated_pair_load": self.estimated_pair_load,
            "shard_loads": list(self.shard_loads),
            "gini_hashed": round(self.gini_hashed, 6),
            "gini_balanced": round(self.gini_balanced, 6),
            "duplicate_scored_pairs": self.duplicate_scored_pairs,
            "shard_candidates": list(self.shard_candidates),
            "shard_emit_seconds": [round(s, 4) for s in self.shard_emit_seconds],
            "shard_score_seconds": [round(s, 4) for s in self.shard_score_seconds],
            "faults": self.fault_report.as_dict(),
        }


@dataclass
class RouterPlan:
    """Per-shard task lists plus the load accounting behind them."""

    tasks: List[List[BucketTask]]
    loads: List[int]
    report: ShardReport


class ShardRouter:
    """Deterministically assign live buckets (and hot-bucket slices) to shards.

    The router never looks at record *content* — only at bucket membership
    sizes — so planning is O(buckets) and independent of scoring cost.  All
    tie-breaks are total orders (load, index id, key string, shard id),
    which makes the plan a pure function of the bucket state and the config.
    """

    def __init__(self, num_shards: int, hot_bucket_factor: float = 4.0,
                 min_split_pairs: int = 256, rebalance_gini: float = 0.5) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.hot_bucket_factor = hot_bucket_factor
        self.min_split_pairs = min_split_pairs
        self.rebalance_gini = rebalance_gini

    def plan(self, buckets: Sequence[Dict[Hashable, List[int]]],
             caps: Sequence[int]) -> RouterPlan:
        """Build the shard plan for one run's bucket state.

        ``buckets[i]`` maps bucket key to member positions for index ``i``
        (insertion order, ``caps[i] + 1``-truncated, matching the
        single-process indexes); overflowed and single-member buckets are
        recorded in the report but emit no tasks.
        """
        from ..obs.stats import gini

        shards = self.num_shards
        report = ShardReport(num_shards=shards, workers=0, used_processes=False)

        # (load, index_id, key_string, key, members) for every live bucket.
        live: List[Tuple[int, int, str, Hashable, Tuple[int, ...]]] = []
        for index_id, (index_buckets, cap) in enumerate(zip(buckets, caps)):
            for key, members in index_buckets.items():
                size = len(members)
                if size < 2:
                    report.trivial_buckets += 1
                    continue
                if size > cap:
                    report.dead_buckets += 1
                    continue
                load = size * (size - 1) // 2
                live.append((load, index_id, str(key), key, tuple(members)))
        report.routed_buckets = len(live)
        report.estimated_pair_load = sum(entry[0] for entry in live)

        # Baseline: what pure hashing would have produced (for the skew gap).
        hashed_loads = [0] * shards
        for load, index_id, _, key, _ in live:
            hashed_loads[shard_of_key(index_id, key, shards)] += load
        report.gini_hashed = gini(hashed_loads)

        fair_share = report.estimated_pair_load / shards if shards else 0.0
        hot_threshold = max(self.min_split_pairs,
                            self.hot_bucket_factor * fair_share)

        # Placement list: (load, index_id, key_string, key, task).  Kept flat
        # so the rebalance fallback can repack deterministically from scratch.
        placements: List[Tuple[int, int, str, Hashable, BucketTask]] = []
        hot: List[Tuple[int, int, str, Hashable, Tuple[int, ...]]] = []
        for entry in live:
            load, index_id, key_string, key, members = entry
            if shards > 1 and load > hot_threshold:
                hot.append(entry)
                continue
            placements.append((load, index_id, key_string, key,
                               (index_id, members, 0, 1)))
        for load, index_id, key_string, key, members in sorted(
                hot, key=lambda e: (-e[0], e[1], e[2])):
            num_slices = min(shards, max(2, math.ceil(load / hot_threshold)))
            slice_load = math.ceil(load / num_slices)
            for slice_index in range(num_slices):
                placements.append((slice_load, index_id,
                                   f"{key_string}#{slice_index}", key,
                                   (index_id, members, slice_index, num_slices)))
            report.hot_buckets_split += 1
            report.slices_created += num_slices

        tasks, loads = self._place(placements)
        if shards > 1 and gini(loads) > self.rebalance_gini:
            # Fallback: ignore hashing entirely and repack greedily.
            report.rebalanced = True
            tasks, loads = self._place(placements, greedy_all=True)

        report.shard_loads = loads
        report.gini_balanced = gini(loads)
        return RouterPlan(tasks=tasks, loads=loads, report=report)

    # ------------------------------------------------------------------ #
    def _place(self, placements: Sequence[Tuple[int, int, str, Hashable, BucketTask]],
               greedy_all: bool = False,
               ) -> Tuple[List[List[BucketTask]], List[int]]:
        """Assign placements to shards; returns (per-shard tasks, loads).

        Default policy: unsplit buckets go to their :func:`shard_of_key`
        hash shard; hot-bucket slices go to the least-loaded shard at
        placement time (slices placed in descending load order).  With
        ``greedy_all`` every placement is packed least-loaded-first (the
        rebalance fallback).  Both policies are deterministic, and neither
        changes *which* pairs each task emits — only where — so the merged
        output is assignment-invariant.
        """
        shards = self.num_shards
        tasks: List[List[BucketTask]] = [[] for _ in range(shards)]
        loads = [0] * shards

        def place_least_loaded(load: int, task: BucketTask) -> None:
            shard = min(range(shards), key=lambda s: (loads[s], s))
            tasks[shard].append(task)
            loads[shard] += load

        if greedy_all:
            for load, _, _, _, task in sorted(placements,
                                              key=lambda p: (-p[0], p[1], p[2])):
                place_least_loaded(load, task)
            return tasks, loads

        deferred: List[Tuple[int, int, str, Hashable, BucketTask]] = []
        for placement in placements:
            load, index_id, _, key, task = placement
            if task[3] > 1:  # a hot-bucket slice: defer to least-loaded pass
                deferred.append(placement)
                continue
            shard = shard_of_key(index_id, key, shards)
            tasks[shard].append(task)
            loads[shard] += load
        for load, _, _, _, task in sorted(deferred,
                                          key=lambda p: (-p[0], p[1], p[2])):
            place_least_loaded(load, task)
        return tasks, loads


# ---------------------------------------------------------------------- #
# Worker side.  State travels by fork inheritance: the driver populates
# _WORKER_STATE *before* creating the process pool, each forked child gets a
# copy-on-write snapshot, and nothing heavyweight (records, the fitted
# predictor) is ever pickled.  The in-process path uses the same globals so
# both paths execute identical code.
# ---------------------------------------------------------------------- #

@dataclass
class _WorkerState:
    """Everything a worker needs, installed as a module global pre-fork.

    ``capture_telemetry`` mirrors ``obs.enabled()`` in the driver at run
    start: when set, each worker runs its phase under a fresh telemetry
    scope and ships the result back as a :class:`~repro.obs.TelemetryPayload`
    (see :mod:`repro.obs.merge`) — a forked child's registry/collector would
    otherwise die with the process.
    """

    records: List[Record]
    record_ids: List[str]
    sources: List[str]
    predictor: BatchedPredictor
    config: PipelineConfig
    capture_telemetry: bool = False


_WORKER_STATE: Optional[_WorkerState] = None
_WORKER_INDEXES = None  # lazily-built per-process index triple (key fns only)


def _worker_indexes():
    """The blocking-index triple in this process (built once, lazily).

    Workers use the indexes purely as *key functions* (``bucket_keys_batch``
    is read-only); the canonical factory guarantees the keys match whatever
    any other process computes under the same config.
    """
    global _WORKER_INDEXES
    if _WORKER_INDEXES is None:
        config = _WORKER_STATE.config
        _WORKER_INDEXES = build_blocking_indexes(
            attributes=config.blocking_attributes,
            num_perm=config.num_perm, bands=config.bands,
            lsh_max_bucket_size=config.lsh_max_bucket_size,
            max_postings=config.max_postings,
            initials_max_bucket_size=config.initials_max_bucket_size,
            min_token_length=config.min_token_length, seed=config.seed)
    return _WORKER_INDEXES


def _sketch_slice(bounds: Tuple[int, int]) -> List[List[List[Hashable]]]:
    """Phase A: bucket keys for records[start:end], one list per index.

    Returns ``keys[index_id][i]`` = bucket keys of record ``start + i``.
    The MinHash signature pass inside ``bucket_keys_batch`` is the dominant
    blocking cost, which is why Phase A parallelises over record slices.
    """
    start, end = bounds
    if faults.check("sharded.sketch", start=start) == "partial":
        return faults.partial_result(start=start)
    batch = _WORKER_STATE.records[start:end]
    return [index.bucket_keys_batch(batch) for index in _worker_indexes()]


def _score_shard(payload: Tuple[int, List[BucketTask]]) -> Dict[str, object]:
    """Phase B entry: run one shard, optionally under a fresh telemetry scope.

    While the driver had telemetry enabled at run start, the worker installs
    its own registry + collector (on a detached span stack, so the in-process
    path's open driver spans cannot swallow the worker tree), runs the phase
    under a ``sharded.worker`` root span, and attaches the resulting
    picklable payload to the result under ``"telemetry"``.  The driver
    re-roots those spans under its ``sharded.score`` span and folds the
    metrics in — one observation site per shard per phase, whichever process
    ran it.
    """
    shard_id = payload[0]
    # Fault site ahead of the telemetry scope: a failed attempt ships no
    # payload, so retries cannot double-observe the per-shard histograms.
    if faults.check("sharded.score", shard=shard_id) == "partial":
        return faults.partial_result(shard=shard_id)
    if not _WORKER_STATE.capture_telemetry:
        return _score_shard_impl(payload)
    with obs.detached_stack(), obs.telemetry() as session:
        with obs.trace("sharded.worker", shard=shard_id):
            result = _score_shard_impl(payload)
    result["telemetry"] = obs.capture_payload(session.registry,
                                              session.collector,
                                              shard=shard_id)
    return result


def _score_shard_impl(payload: Tuple[int, List[BucketTask]]) -> Dict[str, object]:
    """Phase B: emit, dedupe, canonically order and score one shard's pairs.

    Enumeration within a bucket follows member insertion order (positions
    ascend), and a split slice keeps every ``ordinal % num_slices ==
    slice_index`` pair — a partition of the bucket's pair set, so the union
    over slices is exactly the unsplit bucket's output.  Pairs are deduped
    within the shard, mapped to the canonical sorted ``(record_id,
    record_id)`` key and scored in ``scoring_chunk_size`` chunks — the same
    order and chunking the single-process stage uses, which is what makes
    one-shard runs bit-identical to :class:`LinkagePipeline`.
    """
    shard_id, tasks = payload
    state = _WORKER_STATE
    sources = state.sources
    cross_source_only = state.config.cross_source_only

    emit_start = time.perf_counter()
    with obs.trace("emit", shard=shard_id):
        position_pairs: Set[Tuple[int, int]] = set()
        for _, members, slice_index, num_slices in tasks:
            ordinal = 0
            for left, right in combinations(members, 2):
                selected = num_slices == 1 or ordinal % num_slices == slice_index
                ordinal += 1
                if not selected:
                    continue
                if cross_source_only and sources[left] == sources[right]:
                    continue
                position_pairs.add((left, right))

        record_ids = state.record_ids
        keyed: List[Tuple[Tuple[str, str], int, int]] = []
        for left, right in position_pairs:
            key = (record_ids[left], record_ids[right])
            if key[0] > key[1]:
                key = (key[1], key[0])
                left, right = right, left
            keyed.append((key, left, right))
        keyed.sort(key=lambda item: item[0])
        records = state.records
        pairs = [EntityPair(left=records[left], right=records[right], label=None)
                 for _, left, right in keyed]
    emit_seconds = time.perf_counter() - emit_start

    score_start = time.perf_counter()
    with obs.trace("score", shard=shard_id, pairs=len(pairs)):
        scoring = ScoringStage(state.predictor,
                               chunk_size=state.config.scoring_chunk_size)
        scored = scoring.run(pairs)
    score_seconds = time.perf_counter() - score_start

    # The one observation site for per-shard phase timings: in the worker,
    # inside its telemetry scope, so each shard's emit/score seconds land in
    # the histogram exactly once regardless of where the shard ran.
    help_text = "Wall-clock per shard per phase"
    obs.histogram("pipeline_sharded_shard_seconds", help_text,
                  {"phase": "emit"}).observe(emit_seconds)
    obs.histogram("pipeline_sharded_shard_seconds", help_text,
                  {"phase": "score"}).observe(score_seconds)
    return {
        "shard": shard_id,
        "positions": [(left, right) for _, left, right in keyed],
        "scores": scored.scores,
        "stats": scored.stats,
        "emit_seconds": emit_seconds,
        "score_seconds": score_seconds,
    }


# ---------------------------------------------------------------------- #
# Driver.
# ---------------------------------------------------------------------- #

@dataclass
class ShardedPipelineResult(PipelineResult):
    """A :class:`PipelineResult` plus the shard plan/execution report."""

    shard_report: Optional[ShardReport] = None

    def summary(self) -> Dict[str, object]:
        payload = super().summary()
        if self.shard_report is not None:
            payload["sharding"] = self.shard_report.as_dict()
        return payload


class ShardedPipeline:
    """Run the linkage pipeline sharded across worker processes.

    Drop-in alternative to :class:`~repro.pipeline.engine.LinkagePipeline`:
    same predictor, same :class:`PipelineConfig`, same result type (plus a
    :class:`ShardReport`), same clusters.  ``ShardConfig(workers=1)`` with
    one shard is bit-identical to the single-process engine and is also the
    automatic fallback on platforms without the ``fork`` start method.

    Parameters
    ----------
    predictor:
        The fitted :class:`~repro.infer.BatchedPredictor`; inherited by
        worker processes via fork, never pickled.
    config:
        Stage tuning knobs shared with the single-process engine.
    shards:
        Sharding knobs; see :class:`ShardConfig`.
    """

    def __init__(self, predictor: BatchedPredictor,
                 config: Optional[PipelineConfig] = None,
                 shards: Optional[ShardConfig] = None) -> None:
        self.predictor = predictor
        self.config = config or PipelineConfig()
        self.shards = shards or ShardConfig()

    # ------------------------------------------------------------------ #
    @staticmethod
    def fork_available() -> bool:
        """Whether this platform supports the ``fork`` start method."""
        return "fork" in multiprocessing.get_all_start_methods()

    def run(self, records: Iterable[Record]) -> ShardedPipelineResult:
        """Run ingest → sketch → route → emit/score → merge → cluster.

        With telemetry enabled the whole run is one ``sharded.run`` span
        tree: driver stages as children, and each worker's shipped
        ``sharded.worker`` tree re-rooted under ``sharded.score`` (see
        :mod:`repro.obs.merge`), so the export shows one coherent story
        instead of per-process fragments.
        """
        with obs.trace("sharded.run", workers=self.shards.workers,
                       shards=self.shards.resolved_shards) as run_span:
            result = self._run(records)
            run_span.set("records", len(result.records))
        return result

    def _run(self, records: Iterable[Record]) -> ShardedPipelineResult:
        global _WORKER_STATE, _WORKER_INDEXES
        config = self.config
        shard_config = self.shards
        num_shards = shard_config.resolved_shards
        seconds: Dict[str, float] = {name: 0.0 for name in STAGE_ORDER}

        start = time.perf_counter()
        with obs.trace("sharded.ingest"):
            record_list = list(records)
        seconds["ingest"] = time.perf_counter() - start

        use_processes = shard_config.workers > 1 and self.fork_available()
        state = _WorkerState(
            records=record_list,
            record_ids=[record.record_id for record in record_list],
            sources=[record.source for record in record_list],
            predictor=self.predictor,
            config=config,
            capture_telemetry=obs.enabled(),
        )
        _WORKER_STATE, _WORKER_INDEXES = state, None
        pool_factory = None
        if use_processes:
            # The pool must fork *after* the state global is populated; the
            # factory re-forks that same state whenever the executor
            # replaces a pool lost to a worker death or deadline breach.
            def pool_factory() -> ProcessPoolExecutor:
                return ProcessPoolExecutor(
                    max_workers=shard_config.workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=faults.mark_worker_process)
        executor = TaskExecutor(policy=shard_config.retry,
                                pool_factory=pool_factory)
        try:
            # Phase A: per-record bucket keys, then global bucket assembly.
            start = time.perf_counter()
            with obs.trace("sharded.sketch", records=len(record_list)):
                slices = [(lo, min(lo + shard_config.sketch_chunk_size,
                                   len(record_list)))
                          for lo in range(0, len(record_list),
                                          shard_config.sketch_chunk_size)]
                sketched = executor.run(
                    _sketch_slice, slices,
                    labels=[f"sketch-{lo}" for lo, _ in slices])
            caps = (config.lsh_max_bucket_size, config.max_postings,
                    config.initials_max_bucket_size)
            buckets: List[Dict[Hashable, List[int]]] = [{} for _ in caps]
            position = 0
            for slice_keys in sketched:
                slice_len = len(slice_keys[0]) if slice_keys else 0
                for offset in range(slice_len):
                    for index_id, cap in enumerate(caps):
                        index_buckets = buckets[index_id]
                        for key in slice_keys[index_id][offset]:
                            bucket = index_buckets.setdefault(key, [])
                            if len(bucket) <= cap:  # extra entry marks overflow
                                bucket.append(position + offset)
                position += slice_len
            seconds["block"] = time.perf_counter() - start

            # Route buckets to shards.
            start = time.perf_counter()
            router = ShardRouter(num_shards,
                                 hot_bucket_factor=shard_config.hot_bucket_factor,
                                 min_split_pairs=shard_config.min_split_pairs,
                                 rebalance_gini=shard_config.rebalance_gini)
            with obs.trace("sharded.route"):
                plan = router.plan(buckets, caps)
            report = plan.report
            report.workers = shard_config.workers
            report.used_processes = use_processes
            report.fault_report = executor.report
            routing_seconds = time.perf_counter() - start

            # Phase B: emit + score per shard.
            start = time.perf_counter()
            payloads = [(shard_id, tasks)
                        for shard_id, tasks in enumerate(plan.tasks) if tasks]
            with obs.trace("sharded.score", shards=len(payloads)) as score_span:
                shard_results = executor.run(
                    _score_shard, payloads,
                    labels=[f"shard-{shard_id}" for shard_id, _ in payloads])
                # Fold each worker's shipped telemetry into the live session:
                # metrics merge under the snapshot algebra, span trees re-root
                # under this score span tagged with their shard id.
                for shard_result in sorted(shard_results,
                                           key=lambda r: r["shard"]):
                    worker_telemetry = shard_result.pop("telemetry", None)
                    if worker_telemetry is not None:
                        obs.merge_payload(worker_telemetry, parent=score_span,
                                          shard=shard_result["shard"])
            phase_b_seconds = time.perf_counter() - start
        finally:
            executor.shutdown()
            _WORKER_STATE, _WORKER_INDEXES = None, None

        # Stage attribution: the emit critical path counts as "pair", the
        # rest of the worker phase as "score" (approximate by construction —
        # workers overlap the two freely).
        emit_critical = max((r["emit_seconds"] for r in shard_results), default=0.0)
        seconds["pair"] = routing_seconds + emit_critical
        seconds["score"] = max(phase_b_seconds - emit_critical, 0.0)

        scored, candidates = self._merge(state, shard_results, report, seconds)

        clustering = ClusteringStage(threshold=config.score_threshold,
                                     source_consistent=config.source_consistent)
        start = time.perf_counter()
        with obs.trace("sharded.cluster"):
            clusters = clustering.run(record_list, scored)
        seconds["cluster"] = time.perf_counter() - start

        result = ShardedPipelineResult(
            records=record_list, candidates=candidates, scored=scored,
            clusters=clusters, stage_seconds=seconds, config=config,
            index_stats=self._index_stats(buckets, caps, len(record_list)),
            shard_report=report)
        if obs.enabled():
            self._record_run_metrics(report)
        return result

    # ------------------------------------------------------------------ #
    def _merge(self, state: _WorkerState,
               shard_results: List[Dict[str, object]], report: ShardReport,
               seconds: Dict[str, float],
               ) -> Tuple[ScoredCandidates, CandidateResult]:
        """Union shard outputs into canonical scored candidates.

        A pair emitted by several shards (the same two records can share
        buckets routed to different shards) keeps the score from the lowest
        shard id — a deterministic rule; the duplicate count is the actual
        cross-shard coordination overhead and lands in the report.
        """
        records, record_ids = state.records, state.record_ids
        merged: Dict[Tuple[str, str], Tuple[int, int, float]] = {}
        duplicates = 0
        chunks = 0.0
        cache_hits = 0.0
        for result in sorted(shard_results, key=lambda r: r["shard"]):
            chunks += result["stats"].get("chunks", 0.0)
            cache_hits += result["stats"].get("encoding_cache_hits", 0.0)
            for (left, right), score in zip(result["positions"], result["scores"]):
                key = (record_ids[left], record_ids[right])
                if key in merged:
                    duplicates += 1
                    continue
                merged[key] = (left, right, float(score))
        report.duplicate_scored_pairs = duplicates
        report.shard_candidates = [len(r["positions"]) for r in
                                   sorted(shard_results, key=lambda r: r["shard"])]
        report.shard_emit_seconds = [r["emit_seconds"] for r in
                                     sorted(shard_results, key=lambda r: r["shard"])]
        report.shard_score_seconds = [r["score_seconds"] for r in
                                      sorted(shard_results, key=lambda r: r["shard"])]

        ordered = sorted(merged)
        pairs = [EntityPair(left=records[merged[key][0]],
                            right=records[merged[key][1]], label=None)
                 for key in ordered]
        scores = np.asarray([merged[key][2] for key in ordered])

        score_stats: Dict[str, float] = {
            "num_pairs": float(len(pairs)),
            "chunks": chunks,
            "micro_batch_size": float(self.predictor.micro_batch_size),
            "encoding_cache_hits": cache_hits,
        }
        if len(pairs):
            score_stats["mean_score"] = float(scores.mean())
            score_stats["pairs_per_second"] = len(pairs) / max(seconds["score"], 1e-9)
        scored = ScoredCandidates(pairs=pairs, scores=scores, stats=score_stats)

        retrieved = set(ordered)
        possible = possible_cross_source_pairs(records, self.config.cross_source_only)
        truth = ground_truth_pairs(records, self.config.cross_source_only)
        pair_stats: Dict[str, float] = {
            "num_records": float(len(records)),
            "num_candidates": float(len(pairs)),
            "possible_pairs": float(possible),
            "reduction_ratio": len(pairs) / possible if possible else 0.0,
            "pair_reduction_factor": possible / max(len(pairs), 1),
            "duplicate_scored_pairs": float(duplicates),
        }
        if truth:
            pair_stats["num_true_pairs"] = float(len(truth))
            pair_stats["recall"] = len(truth & retrieved) / len(truth)
        candidates = CandidateResult(pairs=pairs, stats=pair_stats)
        return scored, candidates

    def _index_stats(self, buckets: Sequence[Dict[Hashable, List[int]]],
                     caps: Sequence[int], num_records: int) -> Dict[str, float]:
        """Per-index counters matching the batch stage's ``index_stats`` keys."""
        config = self.config
        overflow = [sum(1 for members in index_buckets.values()
                        if len(members) > cap)
                    for index_buckets, cap in zip(buckets, caps)]
        return {
            "MinHashLSHIndex_records": float(num_records),
            "MinHashLSHIndex_buckets": float(len(buckets[0])),
            "MinHashLSHIndex_overflowed_buckets": float(overflow[0]),
            "MinHashLSHIndex_bands": float(config.bands),
            "MinHashLSHIndex_rows": float(config.num_perm // config.bands),
            "InvertedTokenIndex_records": float(num_records),
            "InvertedTokenIndex_tokens": float(len(buckets[1])),
            "InvertedTokenIndex_overflowed_tokens": float(overflow[1]),
            "InitialsKeyIndex_records": float(num_records),
            "InitialsKeyIndex_keys": float(len(buckets[2])),
            "InitialsKeyIndex_overflowed_keys": float(overflow[2]),
        }

    def _record_run_metrics(self, report: ShardReport) -> None:
        """Publish one sharded run's counters/gauges (only while enabled)."""
        obs.counter("pipeline_sharded_runs_total", "Sharded pipeline runs completed").inc()
        obs.counter("pipeline_sharded_splits_total",
                    "Hot buckets split across shards").inc(report.hot_buckets_split)
        obs.counter("pipeline_sharded_duplicates_total",
                    "Pairs scored by more than one shard").inc(
            report.duplicate_scored_pairs)
        obs.gauge("pipeline_sharded_workers_count",
                  "Worker processes of the last run").set(
            report.workers if report.used_processes else 1)
        obs.gauge("pipeline_sharded_gini_ratio",
                  "Shard pair-load Gini (0 = even)",
                  {"assignment": "hashed"}).set(report.gini_hashed)
        obs.gauge("pipeline_sharded_gini_ratio",
                  "Shard pair-load Gini (0 = even)",
                  {"assignment": "balanced"}).set(report.gini_balanced)
        for shard_id, load in enumerate(report.shard_loads):
            obs.gauge("pipeline_sharded_load_pairs",
                      "Estimated candidate-pair load per shard",
                      {"shard": str(shard_id)}).set(load)
        # pipeline_sharded_shard_seconds is observed in the workers (one
        # observation per shard per phase, merged back into this registry);
        # re-observing the report's per-shard timings here would double-count.
