"""Scalable end-to-end linkage engine: ingest → block → pair → score → cluster.

The model (:mod:`repro.core`) matches *pairs*; a deployment links *corpora*.
This package provides the surrounding production pipeline:

* :mod:`~repro.pipeline.index` — MinHash-LSH and inverted-token candidate
  indexes with streaming ``add_records`` ingestion and bucket-size caps;
* :mod:`~repro.pipeline.candidates` — cross-source candidate generation with
  recall / pair-reduction statistics against ``entity_id`` ground truth;
* :mod:`~repro.pipeline.scoring` — chunked scoring through the batched
  inference engine (:class:`~repro.infer.BatchedPredictor`);
* :mod:`~repro.pipeline.clustering` — union-find entity resolution with a
  transitivity-violation report and pairwise cluster metrics;
* :mod:`~repro.pipeline.engine` — the :class:`LinkagePipeline` orchestrator,
  also runnable as ``python -m repro.pipeline``;
* :mod:`~repro.pipeline.sharded` — the :class:`ShardedPipeline` runner that
  partitions blocking and scoring across worker processes behind a
  skew-aware :class:`ShardRouter` (``python -m repro.pipeline --workers N``).
"""

from .candidates import (CandidateGenerationStage, CandidateResult,
                         ground_truth_pairs, possible_cross_source_pairs)
from .clustering import (ClusteringStage, ClusterResult, MatchEdge, UnionFind,
                         apply_match_edges, order_match_edges,
                         pairwise_cluster_metrics)
from .engine import LinkagePipeline, PipelineConfig, PipelineResult
from .index import (InitialsKeyIndex, InvertedTokenIndex, MinHashLSHIndex,
                    build_blocking_indexes, record_tokens)
from .scoring import ScoredCandidates, ScoringStage
from .sharded import (ShardConfig, ShardedPipeline, ShardedPipelineResult,
                      ShardReport, ShardRouter, shard_of_key)

__all__ = [
    "CandidateGenerationStage",
    "CandidateResult",
    "ClusteringStage",
    "ClusterResult",
    "InitialsKeyIndex",
    "InvertedTokenIndex",
    "LinkagePipeline",
    "MatchEdge",
    "MinHashLSHIndex",
    "PipelineConfig",
    "PipelineResult",
    "ScoredCandidates",
    "ScoringStage",
    "ShardConfig",
    "ShardReport",
    "ShardRouter",
    "ShardedPipeline",
    "ShardedPipelineResult",
    "UnionFind",
    "apply_match_edges",
    "build_blocking_indexes",
    "ground_truth_pairs",
    "order_match_edges",
    "pairwise_cluster_metrics",
    "possible_cross_source_pairs",
    "record_tokens",
    "shard_of_key",
]
