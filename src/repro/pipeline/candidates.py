"""Candidate generation: union index hits into deduplicated cross-source pairs.

The stage owns the indexes and the ingested record list.  Records stream in
via :meth:`CandidateGenerationStage.add_records` (each batch is forwarded to
every index); :meth:`generate` then unions the indexes' bucket collisions,
enforces cross-source-only pairing, dedupes via sorted-id keys and computes
blocking-quality statistics (recall against ``entity_id`` ground truth and
the pair-reduction ratio against full cross-source enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# Ground-truth helpers live in the data layer (shared with the blockers);
# re-exported here because they are part of this stage's reporting API.
from ..data.blocking import ground_truth_pairs, possible_cross_source_pairs
from ..data.records import EntityPair, Record
from .index import build_blocking_indexes

__all__ = ["CandidateGenerationStage", "CandidateResult", "ground_truth_pairs",
           "possible_cross_source_pairs"]


@dataclass
class CandidateResult:
    """Candidate pairs plus the blocking-quality statistics of the stage."""

    pairs: List[EntityPair]
    stats: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)


class CandidateGenerationStage:
    """Union one or more indexes into a deduplicated candidate-pair stream.

    Parameters
    ----------
    indexes:
        Index objects exposing ``add_records`` / ``candidate_pairs`` /
        ``stats`` (see :mod:`repro.pipeline.index`).  Defaults to a
        MinHash-LSH index, an inverted token index and an initials-key index
        over ``attributes``.  The default caps are deliberately tight — a
        bucket shared by more than a handful of records carries almost no
        linkage signal, and the three indexes back each other up, so tight
        caps buy an order of magnitude of pair reduction at little recall
        cost.
    attributes:
        Blocking attributes forwarded to the default indexes.
    cross_source_only:
        Drop pairs whose records come from the same data source (the MEL
        setting: linkage is across sources).
    """

    def __init__(self, indexes: Optional[Sequence[object]] = None,
                 attributes: Optional[Sequence[str]] = None,
                 cross_source_only: bool = True,
                 num_perm: int = 128, bands: int = 32,
                 max_bucket_size: int = 8, max_postings: int = 8,
                 initials_max_bucket_size: int = 16,
                 min_token_length: int = 3, seed: int = 7) -> None:
        if indexes is None:
            indexes = build_blocking_indexes(
                attributes=attributes, num_perm=num_perm, bands=bands,
                lsh_max_bucket_size=max_bucket_size, max_postings=max_postings,
                initials_max_bucket_size=initials_max_bucket_size,
                min_token_length=min_token_length, seed=seed)
        self.indexes = list(indexes)
        if not self.indexes:
            raise ValueError("CandidateGenerationStage requires at least one index")
        self.cross_source_only = cross_source_only
        self._records: List[Record] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[Record]:
        """The ingested records, in insertion order."""
        return list(self._records)

    def add_records(self, records: Iterable[Record]) -> int:
        """Forward a batch to every index; all indexes see the same order."""
        batch = list(records)
        for index in self.indexes:
            index.add_records(batch)
        self._records.extend(batch)
        return len(batch)

    def generate(self) -> CandidateResult:
        """Union the indexes' collisions into deduplicated candidate pairs.

        Pairs are deduplicated on the sorted ``(record_id, record_id)`` key
        and returned sorted by that key, so the output is independent of
        index iteration order.
        """
        records = self._records
        positions: Set[Tuple[int, int]] = set()
        per_index_hits: Dict[str, int] = {}
        for label, index in zip(self._index_labels(), self.indexes):
            hits = index.candidate_pairs(cross_source_only=self.cross_source_only)
            per_index_hits[label] = len(hits)
            positions |= hits

        seen: Set[Tuple[str, str]] = set()
        keyed: List[Tuple[Tuple[str, str], int, int]] = []
        for left, right in positions:
            key = (records[left].record_id, records[right].record_id)
            if key[0] > key[1]:
                key = (key[1], key[0])
                left, right = right, left
            if key in seen:
                continue
            seen.add(key)
            keyed.append((key, left, right))
        keyed.sort(key=lambda item: item[0])
        pairs = [EntityPair(left=records[left], right=records[right], label=None)
                 for _, left, right in keyed]

        stats = self._stats(pairs, seen, per_index_hits)
        return CandidateResult(pairs=pairs, stats=stats)

    # ------------------------------------------------------------------ #
    def _index_labels(self) -> List[str]:
        """One stats label per index; duplicates of a type stay distinct."""
        counts: Dict[str, int] = {}
        labels: List[str] = []
        for index in self.indexes:
            name = type(index).__name__
            counts[name] = counts.get(name, 0) + 1
            labels.append(name if counts[name] == 1 else f"{name}_{counts[name]}")
        return labels

    def index_stats(self) -> Dict[str, float]:
        """Flattened per-index diagnostics (bucket counts, overflow counters)."""
        flattened: Dict[str, float] = {}
        for label, index in zip(self._index_labels(), self.indexes):
            for key, value in index.stats().items():
                flattened[f"{label}_{key}"] = float(value)
        return flattened

    def skew_report(self, top_k: int = 5) -> Dict[str, Dict[str, object]]:
        """Per-index bucket-skew summaries (Gini, hottest buckets).

        Indexes without a ``skew_stats`` hook (custom blockers) are skipped.
        """
        return {label: index.skew_stats(top_k=top_k)
                for label, index in zip(self._index_labels(), self.indexes)
                if hasattr(index, "skew_stats")}

    def _stats(self, pairs: List[EntityPair], retrieved: Set[Tuple[str, str]],
               per_index_hits: Dict[str, int]) -> Dict[str, float]:
        records = self._records
        possible = possible_cross_source_pairs(records, self.cross_source_only)
        truth = ground_truth_pairs(records, self.cross_source_only)
        stats: Dict[str, float] = {
            "num_records": float(len(records)),
            "num_candidates": float(len(pairs)),
            "possible_pairs": float(possible),
            # Fraction of the full comparison space kept (lower is better) …
            "reduction_ratio": len(pairs) / possible if possible else 0.0,
            # … and its reciprocal, the "N× fewer comparisons" headline.
            # Candidate count is floored at 1 so the stat stays finite (and
            # JSON-serialisable) when blocking finds nothing.
            "pair_reduction_factor": possible / max(len(pairs), 1),
        }
        for name, hits in per_index_hits.items():
            stats[f"hits_{name}"] = float(hits)
        if truth:
            stats["num_true_pairs"] = float(len(truth))
            stats["recall"] = len(truth & retrieved) / len(truth)
        return stats
