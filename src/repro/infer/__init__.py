"""Inference subsystem: model persistence and batched serving.

Trained AdaMEL models are saved as bundle directories (config + schema +
weights) and served through :class:`BatchedPredictor`, which micro-batches
prediction requests into fused ``no_grad`` forward passes.
"""

from .predictor import BatchedPredictor, PredictorQueueFull
from .serialization import MODEL_FORMAT_VERSION, load_model, save_model

__all__ = [
    "BatchedPredictor",
    "PredictorQueueFull",
    "save_model",
    "load_model",
    "MODEL_FORMAT_VERSION",
]
