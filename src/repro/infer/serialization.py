"""Persistence of trained AdaMEL models.

A model bundle is a directory with two files:

* ``model.json`` — the variant name, hyperparameter config, aligned schema and
  the embedder/tokenizer configuration needed to rebuild the encoder;
* ``weights.npz`` — the network ``state_dict`` (float64, lossless).

``load_model`` reconstructs a fitted trainer whose predictions are bit-exact
with the trainer that was saved: the hashed embeddings are a pure function of
their configuration, and the weights round-trip through npz without loss.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from ..core.config import AdaMELConfig
from ..core.model import AdaMELNetwork
from ..core.trainer import AdaMELTrainer
from ..core.variants import create_variant
from ..data.schema import Schema
from ..features.cache import EncodingCache
from ..nn.dtypes import using_dtype
from ..features.encoder import PairEncoder
from ..text.embeddings import HashedEmbedder
from ..text.tokenizer import Tokenizer
from ..utils.serialization import load_json, load_npz, save_json, save_npz

__all__ = ["MODEL_FORMAT_VERSION", "save_model", "load_model"]

MODEL_FORMAT_VERSION = 1

_META_FILE = "model.json"
_WEIGHTS_FILE = "weights.npz"


def save_model(trainer: AdaMELTrainer, path: Union[str, Path]) -> Path:
    """Save a fitted AdaMEL trainer as a model bundle directory.

    Only trainers using the default :class:`HashedEmbedder` can be saved: its
    embeddings are reproducible from configuration alone.  Trainers fitted
    with a custom external embedder must persist that embedder themselves.
    """
    if trainer.network is None or trainer.encoder is None or trainer.schema is None:
        raise ValueError("cannot save an unfitted trainer; call fit() first")
    embedder = trainer.encoder.embedder
    if type(embedder) is not HashedEmbedder:
        # Exact type: a subclass may change embedding behaviour that the
        # recorded configuration cannot reproduce, and load_model rebuilds
        # the base class — the round-trip would silently differ.
        raise TypeError(
            f"save_model supports the built-in HashedEmbedder; got "
            f"{type(embedder).__name__} (persist custom embedders separately)"
        )
    tokenizer = trainer.encoder.tokenizer
    if type(tokenizer) is not Tokenizer:
        raise TypeError(
            f"save_model supports the built-in Tokenizer; got "
            f"{type(tokenizer).__name__} (its behaviour cannot be rebuilt "
            f"from crop_size/keep_punctuation alone)"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": MODEL_FORMAT_VERSION,
        "variant": trainer.variant,
        "config": asdict(trainer.config),
        "schema": list(trainer.schema.attributes),
        "feature_kinds": list(trainer.encoder.extractor.feature_kinds),
        "embedder": {
            "dim": embedder.dim,
            "min_n": embedder.min_n,
            "max_n": embedder.max_n,
            "seed": embedder.table.seed,
            "num_buckets": embedder.table.num_buckets,
        },
        "tokenizer": {
            "crop_size": tokenizer.crop_size,
            "keep_punctuation": tokenizer.keep_punctuation,
        },
        "num_features": trainer.encoder.num_features,
        "embedding_dim": trainer.encoder.embedding_dim,
    }
    save_json(meta, path / _META_FILE)
    save_npz(trainer.network.state_dict(), path / _WEIGHTS_FILE)
    return path


def load_model(path: Union[str, Path],
               cache: Optional[EncodingCache] = None) -> AdaMELTrainer:
    """Load a model bundle into a fitted trainer ready for inference.

    The returned trainer's network is switched to eval mode (inference
    semantics); its predictions match the saved trainer bit-exactly.
    """
    path = Path(path)
    meta = load_json(path / _META_FILE)
    version = meta.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r}; "
            f"this build reads version {MODEL_FORMAT_VERSION}"
        )
    config_payload = dict(meta["config"])
    config_payload["feature_kinds"] = tuple(config_payload["feature_kinds"])
    config = AdaMELConfig(**config_payload)

    trainer = create_variant(meta["variant"], config=config)
    schema = Schema(tuple(meta["schema"]))
    tokenizer = Tokenizer(crop_size=meta["tokenizer"]["crop_size"],
                          keep_punctuation=meta["tokenizer"]["keep_punctuation"])
    embedder_meta = meta["embedder"]
    embedder = HashedEmbedder(dim=embedder_meta["dim"], min_n=embedder_meta["min_n"],
                              max_n=embedder_meta["max_n"], seed=embedder_meta["seed"],
                              tokenizer=tokenizer)
    if embedder_meta["num_buckets"] != embedder.table.num_buckets:
        # The hashed vectors depend on the bucket count; a silent mismatch
        # would load a model whose embeddings differ from the saved ones.
        raise ValueError(
            f"bundle was saved with num_buckets={embedder_meta['num_buckets']} but "
            f"this build hashes into {embedder.table.num_buckets} buckets"
        )
    encoder = PairEncoder(schema, embedder=embedder, tokenizer=tokenizer,
                          feature_kinds=tuple(meta["feature_kinds"]), cache=cache)
    if encoder.num_features != meta["num_features"]:
        raise ValueError(
            f"schema mismatch: bundle declares {meta['num_features']} features, "
            f"rebuilt encoder has {encoder.num_features}"
        )

    # Rebuild under the bundle's compute-dtype policy so a float32-trained
    # model loads as a float32 network and round-trips bit-exactly.
    with using_dtype(config.dtype):
        network = AdaMELNetwork(encoder.num_features, config.embedding_dim, config=config)
    network.load_state_dict(load_npz(path / _WEIGHTS_FILE))
    network.eval()

    trainer.schema = schema
    trainer.encoder = encoder
    trainer.network = network
    return trainer
