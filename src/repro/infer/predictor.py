"""Batched inference over trained AdaMEL models.

``BatchedPredictor`` serves matching probabilities for many target domains
without retraining: prediction requests are micro-batched and executed as
fused forward passes under ``no_grad``, reusing the process-wide encoding
cache so repeated pairs are never re-encoded.

Two usage styles are supported:

* **bulk** — ``predict_proba(pairs)`` scores a pair list in micro-batches;
* **queued** — ``submit(pairs)`` enqueues requests from many call sites and
  ``flush()`` runs one fused pass over everything queued, returning the
  probabilities in submission order (the micro-service style of batching).
"""

from __future__ import annotations

import threading
from itertools import islice
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..core.trainer import AdaMELTrainer
from ..data.records import EntityPair
from ..features.cache import EncodingCache
from ..features.encoder import PairEncoder
from ..nn import no_grad
from ..obs import BoundHandles, DEFAULT_SIZE_BUCKETS
from .serialization import load_model

__all__ = ["BatchedPredictor", "PredictorQueueFull"]

DEFAULT_MICRO_BATCH_SIZE = 256


class _PredictorInstruments(NamedTuple):
    requests: object
    batches: object
    batch_pairs: object


def _bind_predictor_instruments(registry) -> _PredictorInstruments:
    return _PredictorInstruments(
        requests=registry.counter("infer_requests_total",
                                  "Pairs scored through the predictor"),
        batches=registry.counter("infer_batches_total",
                                 "Fused forward passes run"),
        batch_pairs=registry.histogram("infer_batch_pairs",
                                       "Pairs per fused forward pass",
                                       buckets=DEFAULT_SIZE_BUCKETS),
    )


class PredictorQueueFull(RuntimeError):
    """A ``submit`` would grow the request queue past ``max_queue_size``.

    Raised instead of enqueueing, so the queue (and every slice handed out by
    earlier ``submit`` calls) is left untouched.  Either ``flush()`` first,
    raise ``max_queue_size``, or enable ``auto_flush`` so the predictor
    scores the backlog eagerly instead of rejecting requests (with
    ``auto_flush`` enabled this error can no longer occur).
    """


class BatchedPredictor:
    """Micro-batched, no-grad inference front end for a fitted AdaMEL model.

    Parameters
    ----------
    encoder, network:
        The fitted pair encoder and network (for example from a loaded model
        bundle or a trained :class:`~repro.core.trainer.AdaMELTrainer`).
    micro_batch_size:
        Maximum number of pairs per fused forward pass.  Batched predictions
        are numerically equal to one-by-one predictions; micro-batching only
        bounds peak memory while keeping the forward pass fused.
    max_queue_size:
        Hard cap on the number of *unscored* queued requests.  Without
        ``auto_flush``, a ``submit`` that would exceed it raises
        :class:`PredictorQueueFull` and enqueues nothing.  With ``auto_flush``
        set, overflow cannot occur — every submit that reaches the threshold
        scores the backlog down to zero, so the persistent backlog stays
        below ``auto_flush`` (validated ``<= max_queue_size``) and the cap is
        a documentation of the bound rather than a rejection path.  ``None``
        (the default) keeps the queue unbounded, as before.
    auto_flush:
        When the unscored backlog reaches this many pairs, ``submit`` scores
        it eagerly and buffers the probabilities, so the queue of raw pair
        objects stays bounded while the slices returned by earlier ``submit``
        calls remain valid: ``flush()`` still returns every request since the
        last flush, in submission order.  ``None`` disables eager scoring.

    Queue bookkeeping (``submit`` / ``flush`` / ``pending``) is guarded by an
    internal lock.  The forward pass itself is **not** re-entrant (autograd
    mode is process-wide), so concurrent ``predict_proba`` calls from several
    threads must be serialized by the caller — see
    :class:`repro.serve.RequestCoalescer`, which funnels all scoring through
    one executor thread.
    """

    def __init__(self, encoder: PairEncoder, network,
                 micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE,
                 max_queue_size: Optional[int] = None,
                 auto_flush: Optional[int] = None) -> None:
        if micro_batch_size <= 0:
            raise ValueError(f"micro_batch_size must be positive, got {micro_batch_size}")
        if max_queue_size is not None and max_queue_size <= 0:
            raise ValueError(f"max_queue_size must be positive, got {max_queue_size}")
        if auto_flush is not None and auto_flush <= 0:
            raise ValueError(f"auto_flush must be positive, got {auto_flush}")
        if (auto_flush is not None and max_queue_size is not None
                and auto_flush > max_queue_size):
            raise ValueError(f"auto_flush ({auto_flush}) must not exceed "
                             f"max_queue_size ({max_queue_size})")
        self.encoder = encoder
        self.network = network
        self.micro_batch_size = micro_batch_size
        self.max_queue_size = max_queue_size
        self.auto_flush = auto_flush
        self._queue: List[EntityPair] = []
        self._buffered: List[np.ndarray] = []
        self._buffered_count = 0
        self._queue_lock = threading.RLock()
        self.requests_served = 0
        self.batches_run = 0
        self._obs = BoundHandles(_bind_predictor_instruments)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trainer(cls, trainer: AdaMELTrainer,
                     micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE,
                     max_queue_size: Optional[int] = None,
                     auto_flush: Optional[int] = None) -> "BatchedPredictor":
        """Wrap a fitted trainer without copying its model."""
        if trainer.network is None or trainer.encoder is None:
            raise ValueError("the trainer must be fitted before wrapping it")
        return cls(trainer.encoder, trainer.network, micro_batch_size=micro_batch_size,
                   max_queue_size=max_queue_size, auto_flush=auto_flush)

    @classmethod
    def load(cls, path: Union[str, Path], micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE,
             cache: Optional[EncodingCache] = None,
             max_queue_size: Optional[int] = None,
             auto_flush: Optional[int] = None) -> "BatchedPredictor":
        """Load a saved model bundle (see :func:`repro.infer.save_model`)."""
        trainer = load_model(path, cache=cache)
        return cls.from_trainer(trainer, micro_batch_size=micro_batch_size,
                                max_queue_size=max_queue_size, auto_flush=auto_flush)

    # ------------------------------------------------------------------ #
    # Bulk inference
    # ------------------------------------------------------------------ #
    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Matching probabilities for ``pairs``, computed in micro-batches."""
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        outputs: List[np.ndarray] = []
        instruments = self._obs.get()
        was_training = self.network.training
        self.network.eval()
        try:
            with no_grad():
                for start in range(0, len(pairs), self.micro_batch_size):
                    chunk = pairs[start:start + self.micro_batch_size]
                    batch = self.encoder.encode(chunk)
                    forward = self.network.forward(batch.features)
                    outputs.append(np.atleast_1d(forward.probabilities.data.copy()))
                    self.batches_run += 1
                    if instruments is not None:
                        instruments.batches.inc()
                        instruments.batch_pairs.observe(len(chunk))
        finally:
            self.network.train(was_training)
        self.requests_served += len(pairs)
        if instruments is not None:
            instruments.requests.inc(len(pairs))
        return np.concatenate(outputs)

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def predict_proba_stream(self, pairs: Iterable[EntityPair], chunk_size: int = 2048
                             ) -> Iterator[Tuple[List[EntityPair], np.ndarray]]:
        """Score an arbitrarily large pair stream in bounded chunks.

        Yields ``(chunk, probabilities)`` tuples in stream order; at most
        ``chunk_size`` pairs are materialised at a time, so candidate streams
        larger than memory (e.g. from the linkage pipeline's blocking stage)
        can be scored without ever holding the full pair list.
        """
        if chunk_size <= 0:
            # Validate eagerly — inside the generator body the error would
            # only surface at the first next(), far from the call site.
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")

        def _generate() -> Iterator[Tuple[List[EntityPair], np.ndarray]]:
            iterator = iter(pairs)
            while True:
                chunk = list(islice(iterator, chunk_size))
                if not chunk:
                    return
                yield chunk, self.predict_proba(chunk)

        return _generate()

    def attention_scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Attention vectors ``f(x)`` (shape ``(N, F)``), micro-batched."""
        pairs = list(pairs)
        if not pairs:
            return np.zeros((0, self.encoder.num_features))
        outputs: List[np.ndarray] = []
        was_training = self.network.training
        self.network.eval()
        try:
            with no_grad():
                for start in range(0, len(pairs), self.micro_batch_size):
                    chunk = pairs[start:start + self.micro_batch_size]
                    batch = self.encoder.encode(chunk)
                    outputs.append(self.network.attention_numpy(batch.features))
                    self.batches_run += 1
        finally:
            self.network.train(was_training)
        self.requests_served += len(pairs)
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    # Queued inference
    # ------------------------------------------------------------------ #
    def submit(self, pairs: Union[EntityPair, Sequence[EntityPair]]) -> slice:
        """Enqueue one pair or a pair list; returns the slice of the next
        :meth:`flush` result holding these requests' probabilities.

        With ``auto_flush`` set, a backlog reaching that size is scored
        eagerly (probabilities buffered until the next :meth:`flush`); with
        only ``max_queue_size`` set, an overflowing submit raises
        :class:`PredictorQueueFull` and enqueues nothing.
        """
        if isinstance(pairs, EntityPair):
            pairs = [pairs]
        else:
            pairs = list(pairs)
        with self._queue_lock:
            if (self.auto_flush is None and self.max_queue_size is not None
                    and len(self._queue) + len(pairs) > self.max_queue_size):
                raise PredictorQueueFull(
                    f"submitting {len(pairs)} pair(s) would grow the queue to "
                    f"{len(self._queue) + len(pairs)} > max_queue_size="
                    f"{self.max_queue_size}; flush() first, raise the cap, or "
                    f"enable auto_flush")
            start = self._buffered_count + len(self._queue)
            self._queue.extend(pairs)
            end = start + len(pairs)
            if self.auto_flush is not None and len(self._queue) >= self.auto_flush:
                self._score_backlog()
            return slice(start, end)

    def _score_backlog(self) -> None:
        """Score the unscored queue into the result buffer (queue restored on
        failure, like :meth:`flush`).  Caller must hold the queue lock."""
        queued, self._queue = self._queue, []
        if not queued:
            return
        try:
            probabilities = self.predict_proba(queued)
        except BaseException:
            self._queue = queued + self._queue
            raise
        self._buffered.append(probabilities)
        self._buffered_count += len(queued)

    def pending(self) -> int:
        """Requests submitted but not yet returned by :meth:`flush` (both the
        unscored backlog and any eagerly scored, still-buffered results)."""
        with self._queue_lock:
            return self._buffered_count + len(self._queue)

    def flush(self) -> np.ndarray:
        """Score every queued request in fused micro-batches and clear the
        queue; probabilities are returned in submission order (eagerly scored
        ``auto_flush`` buffers first, then the remaining backlog).  On failure
        the queue is restored, so the slices from :meth:`submit` stay valid
        and a retry flush covers the same requests."""
        with self._queue_lock:
            self._score_backlog()
            buffered, self._buffered = self._buffered, []
            self._buffered_count = 0
        if not buffered:
            return np.zeros(0)
        return buffered[0] if len(buffered) == 1 else np.concatenate(buffered)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Serving counters (requests, fused batches, queue depth)."""
        with self._queue_lock:
            return {
                "requests_served": self.requests_served,
                "batches_run": self.batches_run,
                "pending": self._buffered_count + len(self._queue),
                "queued": len(self._queue),
                "buffered": self._buffered_count,
                "micro_batch_size": self.micro_batch_size,
            }

    def __repr__(self) -> str:
        return (f"BatchedPredictor(micro_batch_size={self.micro_batch_size}, "
                f"served={self.requests_served}, pending={self.pending()})")
