"""Batched inference over trained AdaMEL models.

``BatchedPredictor`` serves matching probabilities for many target domains
without retraining: prediction requests are micro-batched and executed as
fused forward passes under ``no_grad``, reusing the process-wide encoding
cache so repeated pairs are never re-encoded.

Two usage styles are supported:

* **bulk** — ``predict_proba(pairs)`` scores a pair list in micro-batches;
* **queued** — ``submit(pairs)`` enqueues requests from many call sites and
  ``flush()`` runs one fused pass over everything queued, returning the
  probabilities in submission order (the micro-service style of batching).
"""

from __future__ import annotations

from itertools import islice
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.trainer import AdaMELTrainer
from ..data.records import EntityPair
from ..features.cache import EncodingCache
from ..features.encoder import PairEncoder
from ..nn import no_grad
from .serialization import load_model

__all__ = ["BatchedPredictor"]

DEFAULT_MICRO_BATCH_SIZE = 256


class BatchedPredictor:
    """Micro-batched, no-grad inference front end for a fitted AdaMEL model.

    Parameters
    ----------
    encoder, network:
        The fitted pair encoder and network (for example from a loaded model
        bundle or a trained :class:`~repro.core.trainer.AdaMELTrainer`).
    micro_batch_size:
        Maximum number of pairs per fused forward pass.  Batched predictions
        are numerically equal to one-by-one predictions; micro-batching only
        bounds peak memory while keeping the forward pass fused.
    """

    def __init__(self, encoder: PairEncoder, network, micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE) -> None:
        if micro_batch_size <= 0:
            raise ValueError(f"micro_batch_size must be positive, got {micro_batch_size}")
        self.encoder = encoder
        self.network = network
        self.micro_batch_size = micro_batch_size
        self._queue: List[EntityPair] = []
        self.requests_served = 0
        self.batches_run = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trainer(cls, trainer: AdaMELTrainer,
                     micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE) -> "BatchedPredictor":
        """Wrap a fitted trainer without copying its model."""
        if trainer.network is None or trainer.encoder is None:
            raise ValueError("the trainer must be fitted before wrapping it")
        return cls(trainer.encoder, trainer.network, micro_batch_size=micro_batch_size)

    @classmethod
    def load(cls, path: Union[str, Path], micro_batch_size: int = DEFAULT_MICRO_BATCH_SIZE,
             cache: Optional[EncodingCache] = None) -> "BatchedPredictor":
        """Load a saved model bundle (see :func:`repro.infer.save_model`)."""
        trainer = load_model(path, cache=cache)
        return cls.from_trainer(trainer, micro_batch_size=micro_batch_size)

    # ------------------------------------------------------------------ #
    # Bulk inference
    # ------------------------------------------------------------------ #
    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Matching probabilities for ``pairs``, computed in micro-batches."""
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0)
        outputs: List[np.ndarray] = []
        was_training = self.network.training
        self.network.eval()
        try:
            with no_grad():
                for start in range(0, len(pairs), self.micro_batch_size):
                    chunk = pairs[start:start + self.micro_batch_size]
                    batch = self.encoder.encode(chunk)
                    forward = self.network.forward(batch.features)
                    outputs.append(np.atleast_1d(forward.probabilities.data.copy()))
                    self.batches_run += 1
        finally:
            self.network.train(was_training)
        self.requests_served += len(pairs)
        return np.concatenate(outputs)

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def predict_proba_stream(self, pairs: Iterable[EntityPair], chunk_size: int = 2048
                             ) -> Iterator[Tuple[List[EntityPair], np.ndarray]]:
        """Score an arbitrarily large pair stream in bounded chunks.

        Yields ``(chunk, probabilities)`` tuples in stream order; at most
        ``chunk_size`` pairs are materialised at a time, so candidate streams
        larger than memory (e.g. from the linkage pipeline's blocking stage)
        can be scored without ever holding the full pair list.
        """
        if chunk_size <= 0:
            # Validate eagerly — inside the generator body the error would
            # only surface at the first next(), far from the call site.
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")

        def _generate() -> Iterator[Tuple[List[EntityPair], np.ndarray]]:
            iterator = iter(pairs)
            while True:
                chunk = list(islice(iterator, chunk_size))
                if not chunk:
                    return
                yield chunk, self.predict_proba(chunk)

        return _generate()

    def attention_scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Attention vectors ``f(x)`` (shape ``(N, F)``), micro-batched."""
        pairs = list(pairs)
        if not pairs:
            return np.zeros((0, self.encoder.num_features))
        outputs: List[np.ndarray] = []
        was_training = self.network.training
        self.network.eval()
        try:
            with no_grad():
                for start in range(0, len(pairs), self.micro_batch_size):
                    chunk = pairs[start:start + self.micro_batch_size]
                    batch = self.encoder.encode(chunk)
                    outputs.append(self.network.attention_numpy(batch.features))
                    self.batches_run += 1
        finally:
            self.network.train(was_training)
        self.requests_served += len(pairs)
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    # Queued inference
    # ------------------------------------------------------------------ #
    def submit(self, pairs: Union[EntityPair, Sequence[EntityPair]]) -> slice:
        """Enqueue one pair or a pair list; returns the slice of the next
        :meth:`flush` result holding these requests' probabilities."""
        if isinstance(pairs, EntityPair):
            pairs = [pairs]
        start = len(self._queue)
        self._queue.extend(pairs)
        return slice(start, len(self._queue))

    def pending(self) -> int:
        """Number of queued, not yet flushed requests."""
        return len(self._queue)

    def flush(self) -> np.ndarray:
        """Score every queued request in fused micro-batches and clear the
        queue; probabilities are returned in submission order.  On failure
        the queue is restored, so the slices from :meth:`submit` stay valid
        and a retry flush covers the same requests."""
        queued, self._queue = self._queue, []
        if not queued:
            return np.zeros(0)
        try:
            return self.predict_proba(queued)
        except BaseException:
            self._queue = queued + self._queue
            raise

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Serving counters (requests, fused batches, queue depth)."""
        return {
            "requests_served": self.requests_served,
            "batches_run": self.batches_run,
            "pending": len(self._queue),
            "micro_batch_size": self.micro_batch_size,
        }

    def __repr__(self) -> str:
        return (f"BatchedPredictor(micro_batch_size={self.micro_batch_size}, "
                f"served={self.requests_served}, pending={len(self._queue)})")
